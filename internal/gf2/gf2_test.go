package gf2

import (
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 2; m <= 14; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if f.N != (1<<m)-1 {
			t.Errorf("m=%d: N = %d", m, f.N)
		}
	}
	if _, err := NewField(20); err == nil {
		t.Error("unsupported degree accepted")
	}
}

func TestExpLogInverse(t *testing.T) {
	f := MustField(10)
	for i := 0; i < f.N; i++ {
		a := f.Exp(i)
		if a == 0 || int(a) > f.N {
			t.Fatalf("Exp(%d) = %d out of field", i, a)
		}
		if f.Log(a) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, f.Log(a))
		}
	}
}

func TestExpIsPeriodic(t *testing.T) {
	f := MustField(8)
	for _, i := range []int{0, 1, 100, -1, -300} {
		if f.Exp(i) != f.Exp(i+f.N) {
			t.Errorf("Exp not periodic at %d", i)
		}
	}
}

func TestPrimitiveElementGeneratesField(t *testing.T) {
	// α must hit every nonzero element exactly once in N steps.
	for _, m := range []int{4, 8, 10} {
		f := MustField(m)
		seen := make(map[uint32]bool, f.N)
		for i := 0; i < f.N; i++ {
			v := f.Exp(i)
			if seen[v] {
				t.Fatalf("m=%d: α^%d repeats", m, i)
			}
			seen[v] = true
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	f := MustField(10)
	check := func(a, b, c uint32) bool {
		// commutativity, associativity, distributivity
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
			return false
		}
		// identity and inverse
		if f.Mul(a, 1) != a {
			return false
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			return false
		}
		return true
	}
	prop := func(ar, br, cr uint16) bool {
		n := uint32(f.N)
		return check(uint32(ar)%(n+1), uint32(br)%(n+1), uint32(cr)%(n+1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivPow(t *testing.T) {
	f := MustField(8)
	for a := uint32(1); a <= 255; a += 7 {
		for b := uint32(1); b <= 255; b += 11 {
			if f.Mul(f.Div(a, b), b) != a {
				t.Fatalf("Div(%d,%d) wrong", a, b)
			}
		}
	}
	if f.Pow(0, 0) != 1 || f.Pow(0, 5) != 0 || f.Pow(3, 1) != 3 {
		t.Error("Pow edge cases wrong")
	}
	a := uint32(9)
	want := f.Mul(f.Mul(a, a), a)
	if f.Pow(a, 3) != want {
		t.Errorf("Pow(9,3) = %d, want %d", f.Pow(a, 3), want)
	}
}

func TestZeroHandling(t *testing.T) {
	f := MustField(6)
	if f.Mul(0, 5) != 0 || f.Mul(7, 0) != 0 {
		t.Error("Mul by zero wrong")
	}
	if f.Div(0, 3) != 0 {
		t.Error("Div zero wrong")
	}
	for name, fn := range map[string]func(){
		"log": func() { f.Log(0) },
		"inv": func() { f.Inv(0) },
		"div": func() { f.Div(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(0) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMinPolyDividesFieldPolynomial(t *testing.T) {
	// Every minimal polynomial must divide x^N - 1 (= x^N + 1 over GF(2)).
	f := MustField(6)
	xN1 := PolyFromCoeffs(0, f.N)
	for i := 1; i <= 12; i++ {
		mp := f.MinPoly(i)
		if mp.Degree() < 1 || mp.Degree() > f.M {
			t.Fatalf("MinPoly(%d) degree %d", i, mp.Degree())
		}
		if !xN1.Mod(mp).IsZero() {
			t.Errorf("MinPoly(%d) = %v does not divide x^%d+1", i, mp, f.N)
		}
	}
}

func TestMinPolyOfAlphaIsPrimitive(t *testing.T) {
	// The minimal polynomial of α is the primitive polynomial itself.
	for _, m := range []int{3, 8, 10} {
		f := MustField(m)
		mp := f.MinPoly(1)
		want := NewPoly(m)
		for d := 0; d <= m; d++ {
			want.SetCoeff(d, f.Prim&(1<<d) != 0)
		}
		if !mp.Equal(want) {
			t.Errorf("m=%d: MinPoly(1) = %v, want primitive %v", m, mp, want)
		}
	}
}

func TestMinPolyConjugatesShareMinPoly(t *testing.T) {
	f := MustField(8)
	// α^3 and α^6 = (α^3)^2 are conjugates.
	if !f.MinPoly(3).Equal(f.MinPoly(6)) {
		t.Error("conjugates have different minimal polynomials")
	}
}

func TestFieldCaching(t *testing.T) {
	a := MustField(10)
	b := MustField(10)
	if a != b {
		t.Error("field not cached")
	}
}

func BenchmarkMul(b *testing.B) {
	f := MustField(10)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= f.Mul(uint32(i)&1023|1, 777)
	}
	_ = sink
}
