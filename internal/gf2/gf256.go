package gf2

import "sync"

// F256 is GF(2^8) specialised for byte-wise coding hot paths. The
// generic Field type keeps uint32 elements and branches on zero before
// every log lookup, which is fine for BCH syndrome math but too slow
// for Reed-Solomon striping where every data byte passes through a
// field multiply. F256 trades 64 KiB for a full product table so Mul
// is a single indexed load and slice kernels can hoist one row pointer
// out of the loop.
//
// The field is the same GF(2^8) as MustField(8): primitive polynomial
// x^8+x^4+x^3+x^2+1 (0x11D), so elements interoperate bit-for-bit with
// the BCH path.
type F256 struct {
	mul [256][256]byte
	inv [256]byte
}

var (
	f256Once sync.Once
	f256     *F256
)

// GF256 returns the shared GF(2^8) table set. The first call builds
// the tables from the generic field; later calls are a pointer load.
// The returned value is immutable and safe for concurrent use.
func GF256() *F256 {
	f256Once.Do(func() {
		base := MustField(8)
		f := &F256{}
		for a := 1; a < 256; a++ {
			row := &f.mul[a]
			la := int(base.logT[a])
			for b := 1; b < 256; b++ {
				row[b] = byte(base.exp[la+int(base.logT[b])])
			}
			f.inv[a] = byte(base.Inv(uint32(a)))
		}
		f256 = f
	})
	return f256
}

// Mul returns the field product a*b.
func (f *F256) Mul(a, b byte) byte { return f.mul[a][b] }

// Inv returns a^-1; it panics on zero like Field.Inv.
func (f *F256) Inv(a byte) byte {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	return f.inv[a]
}

// Div returns a/b; it panics if b is zero.
func (f *F256) Div(a, b byte) byte {
	if b == 0 {
		panic("gf2: division by zero")
	}
	return f.mul[a][f.inv[b]]
}

// Row returns the multiplication row for coefficient c: Row(c)[x] ==
// c*x. Callers that apply one coefficient across many bytes (matrix
// rows in an erasure codec) should grab the row once instead of paying
// the two-dimensional index per byte.
func (f *F256) Row(c byte) *[256]byte { return &f.mul[c] }

// MulAddSlice computes dst[i] ^= c*src[i] for i < len(src), the axpy
// kernel of systematic Reed-Solomon encode and decode. len(dst) must
// be at least len(src).
func (f *F256) MulAddSlice(dst, src []byte, c byte) {
	if c == 0 || len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	row := &f.mul[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// MulSlice computes dst[i] = c*src[i] for i < len(src).
func (f *F256) MulSlice(dst, src []byte, c byte) {
	if len(src) == 0 {
		return
	}
	if c == 0 {
		for i := range src {
			dst[i] = 0
		}
		return
	}
	_ = dst[len(src)-1]
	if c == 1 {
		copy(dst, src)
		return
	}
	row := &f.mul[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}
