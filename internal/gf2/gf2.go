// Package gf2 implements arithmetic in the binary extension fields
// GF(2^m) and over binary polynomials, the algebra underneath the BCH
// codes used for transient-error correction (paper Sections 5.3 and 6.3).
//
// Elements of GF(2^m) are represented as uint32 bit patterns of their
// polynomial basis coordinates. Multiplication uses log/antilog tables
// generated from a fixed primitive polynomial per m, so results are
// reproducible and fast.
package gf2

import (
	"fmt"
	"sync"
)

// primPolys[m] is a primitive polynomial of degree m over GF(2),
// including the leading term, for each supported field degree.
var primPolys = map[int]uint32{
	2:  0x7,    // x^2+x+1
	3:  0xB,    // x^3+x+1
	4:  0x13,   // x^4+x+1
	5:  0x25,   // x^5+x^2+1
	6:  0x43,   // x^6+x+1
	7:  0x89,   // x^7+x^3+1
	8:  0x11D,  // x^8+x^4+x^3+x^2+1
	9:  0x211,  // x^9+x^4+1
	10: 0x409,  // x^10+x^3+1
	11: 0x805,  // x^11+x^2+1
	12: 0x1053, // x^12+x^6+x^4+x+1
	13: 0x201B, // x^13+x^4+x^3+x+1
	14: 0x4443, // x^14+x^10+x^6+x+1
}

// Field is GF(2^m). Construct with NewField; values are immutable and
// safe for concurrent use.
type Field struct {
	M    int    // extension degree
	N    int    // multiplicative order: 2^m - 1
	Prim uint32 // primitive polynomial
	exp  []uint32
	logT []int32
}

var fieldCache sync.Map // int -> *Field

// NewField returns GF(2^m) for 2 <= m <= 14. Fields are cached.
func NewField(m int) (*Field, error) {
	if f, ok := fieldCache.Load(m); ok {
		return f.(*Field), nil
	}
	prim, ok := primPolys[m]
	if !ok {
		return nil, fmt.Errorf("gf2: unsupported field degree %d", m)
	}
	n := (1 << m) - 1
	f := &Field{M: m, N: n, Prim: prim,
		exp:  make([]uint32, 2*n),
		logT: make([]int32, n+1),
	}
	x := uint32(1)
	for i := 0; i < n; i++ {
		f.exp[i] = x
		f.logT[x] = int32(i)
		x <<= 1
		if x&(1<<m) != 0 {
			x ^= prim
		}
	}
	// Duplicate the table so Exp(i+j) needs no modulo for i, j < n.
	copy(f.exp[n:], f.exp[:n])
	f.logT[0] = -1
	fieldCache.Store(m, f)
	return f, nil
}

// MustField is NewField panicking on error, for static degrees.
func MustField(m int) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// Add returns a + b (= a - b) in the field.
func (f *Field) Add(a, b uint32) uint32 { return a ^ b }

// Exp returns α^i for any integer i (negative allowed).
func (f *Field) Exp(i int) uint32 {
	i %= f.N
	if i < 0 {
		i += f.N
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of a (a != 0); it panics on zero.
func (f *Field) Log(a uint32) int {
	if a == 0 || int(a) > f.N {
		panic("gf2: Log of zero or out-of-field element")
	}
	return int(f.logT[a])
}

// Mul returns the field product of a and b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.logT[a])+int(f.logT[b])]
}

// Inv returns the multiplicative inverse of a; it panics on zero.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	return f.exp[f.N-int(f.logT[a])]
}

// Div returns a / b; it panics if b is zero.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf2: division by zero")
	}
	if a == 0 {
		return 0
	}
	l := int(f.logT[a]) - int(f.logT[b])
	if l < 0 {
		l += f.N
	}
	return f.exp[l]
}

// Pow returns a^e for e >= 0 (with 0^0 = 1).
func (f *Field) Pow(a uint32, e int) uint32 {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(f.logT[a]) * e) % f.N
	if l < 0 {
		l += f.N
	}
	return f.exp[l]
}

// FieldPoly is a polynomial with coefficients in GF(2^m), lowest degree
// first. Used transiently while building minimal polynomials.
type FieldPoly []uint32

// mulLinear returns p(x) * (x + r) over the field.
func (f *Field) mulLinear(p FieldPoly, r uint32) FieldPoly {
	out := make(FieldPoly, len(p)+1)
	for i, c := range p {
		out[i+1] ^= c            // x * c x^i
		out[i] ^= f.Mul(c, r)    // r * c x^i
	}
	return out
}

// MinPoly returns the minimal polynomial of α^i over GF(2) as a binary
// polynomial. It is the product of (x - α^j) over the cyclotomic coset
// of i modulo 2^m - 1; the result always has 0/1 coefficients.
func (f *Field) MinPoly(i int) Poly {
	i %= f.N
	if i < 0 {
		i += f.N
	}
	// Collect the cyclotomic coset {i, 2i, 4i, ...} mod N.
	seen := map[int]bool{}
	coset := []int{}
	for j := i; !seen[j]; j = (2 * j) % f.N {
		seen[j] = true
		coset = append(coset, j)
	}
	p := FieldPoly{1}
	for _, j := range coset {
		p = f.mulLinear(p, f.Exp(j))
	}
	out := NewPoly(len(p) - 1)
	for d, c := range p {
		switch c {
		case 0:
		case 1:
			out.SetCoeff(d, true)
		default:
			// By Galois theory the product over a full coset lies in
			// GF(2); anything else indicates a table corruption.
			panic("gf2: minimal polynomial has non-binary coefficient")
		}
	}
	return out
}
