package trace

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

func TestFileRoundTrip(t *testing.T) {
	for _, p := range []Profile{STREAM, Mcf, Namd} {
		var buf bytes.Buffer
		n, err := Write(&buf, New(p, 5000, 42))
		if err != nil || n != 5000 {
			t.Fatalf("%s: wrote %d: %v", p.WorkloadName, n, err)
		}
		replay, err := Open(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if replay.Name() != p.WorkloadName {
			t.Fatalf("name = %q", replay.Name())
		}
		orig := New(p, 5000, 42)
		count := 0
		for {
			a, okA := orig.Next()
			b, okB := replay.Next()
			if okA != okB {
				t.Fatalf("%s: length mismatch at %d", p.WorkloadName, count)
			}
			if !okA {
				break
			}
			if a != b {
				t.Fatalf("%s: op %d differs: %+v vs %+v", p.WorkloadName, count, a, b)
			}
			count++
		}
		if r, ok := replay.(*reader); ok && r.Err() != nil {
			t.Fatalf("replay error: %v", r.Err())
		}
	}
}

func TestFileCompression(t *testing.T) {
	var buf bytes.Buffer
	const ops = 100000
	if _, err := Write(&buf, New(STREAM, ops, 1)); err != nil {
		t.Fatal(err)
	}
	// Raw encoding would be ~10+ bytes/op; gzip of the delta form should
	// be well under half that.
	if perOp := float64(buf.Len()) / ops; perOp > 5 {
		t.Errorf("%.1f bytes/op; compression ineffective", perOp)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Open(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Valid magic, truncated payload.
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	buf.WriteByte(3)
	buf.WriteString("abc")
	buf.Write([]byte{0x1f}) // half a gzip header
	if _, err := Open(&buf); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestTruncatedRecordsReported(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, New(Bzip2, 100, 9)); err != nil {
		t.Fatal(err)
	}
	// Clip the tail of the gzip stream.
	clipped := buf.Bytes()[:buf.Len()-8]
	replay, err := Open(bytes.NewReader(clipped))
	if err != nil {
		// Acceptable: the gzip footer is gone.
		return
	}
	for {
		if _, ok := replay.Next(); !ok {
			break
		}
	}
	// Either a clean early EOF or a reported error; never a panic.
}

func TestReplayDrivesLikeOriginal(t *testing.T) {
	// A recorded trace must behave identically through arbitrary
	// consumers; spot-check aggregate statistics.
	var buf bytes.Buffer
	if _, err := Write(&buf, New(Lbm, 20000, rngSeed())); err != nil {
		t.Fatal(err)
	}
	replay, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	ops := 0
	for {
		op, ok := replay.Next()
		if !ok {
			break
		}
		ops++
		if op.IsWrite {
			writes++
		}
	}
	if ops != 20000 {
		t.Fatalf("ops = %d", ops)
	}
	frac := float64(writes) / float64(ops)
	if frac < Lbm.WriteFraction-0.03 || frac > Lbm.WriteFraction+0.03 {
		t.Fatalf("write fraction %v", frac)
	}
}

func rngSeed() uint64 { return rng.New(1).Uint64() }
