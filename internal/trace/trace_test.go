package trace

import "testing"

func TestGeneratorDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		a := New(p, 5000, 42)
		b := New(p, 5000, 42)
		for {
			x, okA := a.Next()
			y, okB := b.Next()
			if okA != okB {
				t.Fatalf("%s: stream lengths differ", p.WorkloadName)
			}
			if !okA {
				break
			}
			if x != y {
				t.Fatalf("%s: divergence", p.WorkloadName)
			}
		}
	}
}

func TestGeneratorLengthAndBounds(t *testing.T) {
	for _, p := range Profiles() {
		g := New(p, 1000, 7)
		count := 0
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			count++
			if op.Addr >= p.WorkingSetBytes {
				t.Fatalf("%s: address %#x outside working set", p.WorkloadName, op.Addr)
			}
			if op.NonMemInstrs < 1 {
				t.Fatalf("%s: non-positive instruction gap", p.WorkloadName)
			}
		}
		if count != 1000 {
			t.Fatalf("%s: %d ops", p.WorkloadName, count)
		}
	}
}

func TestProfileStatistics(t *testing.T) {
	for _, p := range Profiles() {
		g := New(p, 200000, 11)
		var writes, ops, instrs int
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			ops++
			instrs += op.NonMemInstrs
			if op.IsWrite {
				writes++
			}
		}
		wf := float64(writes) / float64(ops)
		if wf < p.WriteFraction-0.02 || wf > p.WriteFraction+0.02 {
			t.Errorf("%s: write fraction %v, want ~%v", p.WorkloadName, wf, p.WriteFraction)
		}
		meanGap := float64(instrs) / float64(ops)
		if meanGap < 0.7*float64(p.InstrsPerMemOp) || meanGap > 1.3*float64(p.InstrsPerMemOp) {
			t.Errorf("%s: mean gap %v, want ~%d", p.WorkloadName, meanGap, p.InstrsPerMemOp)
		}
	}
}

func TestIntensityOrdering(t *testing.T) {
	// The paper's classification: namd is compute-bound; STREAM is the
	// most memory-intensive.
	if STREAM.InstrsPerMemOp >= Namd.InstrsPerMemOp {
		t.Error("STREAM should be far more memory-intensive than namd")
	}
	for _, p := range []Profile{STREAM, Mcf, Libquantum, Lbm} {
		if p.InstrsPerMemOp > 10 {
			t.Errorf("%s should be memory-intensive", p.WorkloadName)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("mcf")
	if err != nil || p.WorkloadName != "mcf" {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zeroOps":    func() { New(STREAM, 0, 1) },
		"badProfile": func() { New(Profile{WorkloadName: "x", InstrsPerMemOp: 0, WorkingSetBytes: 1}, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
