// Package trace provides deterministic synthetic memory-access traces
// standing in for the SPEC CPU 2006 and STREAM workloads of the paper's
// Section 7 evaluation (Figure 16). The paper's conclusions there depend
// on each workload's memory intensity, read/write mix, and locality — not
// on instruction semantics — so each generator is parameterized to match
// the qualitative profile of its namesake: STREAM, mcf and libquantum and
// lbm memory-intensive with distinct patterns, bzip2 moderate, namd
// compute-bound. See DESIGN.md's substitution table.
package trace

import (
	"fmt"

	"repro/internal/rng"
)

// Op is one memory operation in a trace, with the number of non-memory
// instructions the core executes before it.
type Op struct {
	NonMemInstrs int
	Addr         uint64
	IsWrite      bool
}

// Generator produces a finite stream of operations.
type Generator interface {
	// Next returns the next operation; ok is false at end of trace.
	Next() (op Op, ok bool)
	// Name identifies the workload.
	Name() string
}

// Profile parameterizes a synthetic workload.
type Profile struct {
	// WorkloadName labels the profile.
	WorkloadName string
	// InstrsPerMemOp is the mean number of non-memory instructions
	// between memory operations (memory intensity is its inverse).
	InstrsPerMemOp int
	// WriteFraction is the store share of memory operations.
	WriteFraction float64
	// WorkingSetBytes bounds the address footprint.
	WorkingSetBytes uint64
	// SequentialFraction is the share of accesses that continue a
	// sequential stream (the rest jump uniformly inside the working set,
	// modeling pointer chasing).
	SequentialFraction float64
	// Streams is the number of concurrent sequential streams (STREAM's
	// a, b, c arrays; lbm's lattice sweeps).
	Streams int
}

// The six profiles of Figure 16. Intensities follow the paper's
// classification: "memory intensive applications (STREAM, mcf,
// libquantum, bzip2, and lbm) ... as well as compute intensive one
// (namd)".
var (
	// STREAM: pure streaming over three large arrays, one store per two
	// loads (a[i] = b[i] + c[i] with write-allocate), extremely memory
	// intensive.
	STREAM = Profile{"STREAM", 2, 0.34, 512 << 20, 1.0, 3}
	// Mcf: pointer-chasing network simplex, large working set, almost no
	// spatial locality.
	Mcf = Profile{"mcf", 6, 0.20, 1 << 30, 0.05, 1}
	// Libquantum: streaming reads over a big quantum-state vector.
	Libquantum = Profile{"libquantum", 5, 0.10, 256 << 20, 0.95, 1}
	// Bzip2: moderate intensity, mixed locality.
	Bzip2 = Profile{"bzip2", 20, 0.30, 8 << 20, 0.55, 2}
	// Namd: compute-bound molecular dynamics; its hot set fits in the L2.
	Namd = Profile{"namd", 90, 0.25, 384 << 10, 0.90, 2}
	// Lbm: lattice-Boltzmann, streaming and write-heavy.
	Lbm = Profile{"lbm", 5, 0.45, 512 << 20, 0.95, 2}
)

// Profiles returns the Figure 16 workloads in presentation order.
func Profiles() []Profile {
	return []Profile{STREAM, Bzip2, Mcf, Namd, Libquantum, Lbm}
}

// ProfileByName looks a profile up by its workload name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.WorkloadName == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown workload %q", name)
}

// synth is the deterministic generator behind every profile.
type synth struct {
	p         Profile
	r         *rng.Rand
	remaining int
	streams   []uint64
	next      int // round-robin stream index
}

// New returns a generator emitting nOps operations of the profile,
// deterministically for a given seed.
func New(p Profile, nOps int, seed uint64) Generator {
	if nOps <= 0 {
		panic("trace: non-positive op count")
	}
	if p.InstrsPerMemOp < 1 || p.WorkingSetBytes == 0 {
		panic("trace: invalid profile")
	}
	streams := p.Streams
	if streams < 1 {
		streams = 1
	}
	s := &synth{p: p, r: rng.New(seed), remaining: nOps,
		streams: make([]uint64, streams)}
	// Spread stream bases across the working set.
	for i := range s.streams {
		s.streams[i] = (p.WorkingSetBytes / uint64(streams)) * uint64(i)
	}
	return s
}

// Name implements Generator.
func (s *synth) Name() string { return s.p.WorkloadName }

// Next implements Generator.
func (s *synth) Next() (Op, bool) {
	if s.remaining <= 0 {
		return Op{}, false
	}
	s.remaining--

	// Geometric-ish gap around the mean, in [1, 3*mean], keeps bursts
	// realistic while staying deterministic and cheap.
	mean := s.p.InstrsPerMemOp
	gap := 1 + s.r.Intn(2*mean)

	var addr uint64
	if s.r.Float64() < s.p.SequentialFraction {
		i := s.next
		s.next = (s.next + 1) % len(s.streams)
		s.streams[i] += 8 // one double per element; lines advance every 8 ops
		addr = s.streams[i] % s.p.WorkingSetBytes
	} else {
		addr = uint64(s.r.Intn(int(s.p.WorkingSetBytes/64))) * 64
	}
	return Op{
		NonMemInstrs: gap,
		Addr:         addr,
		IsWrite:      s.r.Float64() < s.p.WriteFraction,
	}, true
}
