package trace

// Binary trace-file support: record synthetic (or externally produced)
// traces to disk and replay them through the simulator — the standard
// workflow of trace-driven simulators like the McSim setup the paper
// used. The format is a small magic header plus gzip-compressed
// varint-delta records, so multi-million-operation traces stay compact.

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// fileMagic identifies the trace format, versioned.
var fileMagic = [8]byte{'P', 'C', 'M', 'T', 'R', 'C', '0', '1'}

// Write serializes every operation of gen to w. It returns the number of
// operations written.
func Write(w io.Writer, gen Generator) (int, error) {
	if _, err := w.Write(fileMagic[:]); err != nil {
		return 0, err
	}
	// Name, length-prefixed.
	name := gen.Name()
	if len(name) > 255 {
		name = name[:255]
	}
	if _, err := w.Write([]byte{byte(len(name))}); err != nil {
		return 0, err
	}
	if _, err := io.WriteString(w, name); err != nil {
		return 0, err
	}
	zw := gzip.NewWriter(w)
	bw := bufio.NewWriter(zw)
	var buf [3 * binary.MaxVarintLen64]byte
	count := 0
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		n := binary.PutUvarint(buf[:], uint64(op.NonMemInstrs))
		n += binary.PutUvarint(buf[n:], op.Addr)
		flag := uint64(0)
		if op.IsWrite {
			flag = 1
		}
		n += binary.PutUvarint(buf[n:], flag)
		if _, err := bw.Write(buf[:n]); err != nil {
			return count, err
		}
		count++
	}
	if err := bw.Flush(); err != nil {
		return count, err
	}
	return count, zw.Close()
}

// reader replays a serialized trace.
type reader struct {
	name string
	br   *bufio.Reader
	zr   *gzip.Reader
	err  error
}

// Open prepares a serialized trace for replay. The returned Generator
// streams operations until the file ends.
func Open(r io.Reader) (Generator, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if magic != fileMagic {
		return nil, errors.New("trace: not a PCM trace file")
	}
	var nameLen [1]byte
	if _, err := io.ReadFull(r, nameLen[:]); err != nil {
		return nil, fmt.Errorf("trace: name length: %w", err)
	}
	name := make([]byte, nameLen[0])
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: payload: %w", err)
	}
	return &reader{name: string(name), br: bufio.NewReader(zr), zr: zr}, nil
}

// Name implements Generator.
func (t *reader) Name() string { return t.name }

// Err reports a malformed-payload error encountered during replay (EOF
// is a normal end of trace, not an error).
func (t *reader) Err() error { return t.err }

// Next implements Generator.
func (t *reader) Next() (Op, bool) {
	if t.err != nil {
		return Op{}, false
	}
	gap, err := binary.ReadUvarint(t.br)
	if err != nil {
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.err = err
		}
		return Op{}, false
	}
	addr, err := binary.ReadUvarint(t.br)
	if err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return Op{}, false
	}
	flag, err := binary.ReadUvarint(t.br)
	if err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return Op{}, false
	}
	return Op{NonMemInstrs: int(gap), Addr: addr, IsWrite: flag == 1}, true
}
