package trace_test

import (
	"bytes"
	"fmt"

	"repro/internal/trace"
)

// Record a synthetic workload to the compact trace format and replay it.
func Example() {
	var buf bytes.Buffer
	n, err := trace.Write(&buf, trace.New(trace.Mcf, 10000, 42))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("recorded %d ops, compact: %v\n", n, float64(buf.Len())/float64(n) < 8)

	replay, err := trace.Open(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	count := 0
	for {
		if _, ok := replay.Next(); !ok {
			break
		}
		count++
	}
	fmt.Printf("replayed %d ops of %s\n", count, replay.Name())
	// Output:
	// recorded 10000 ops, compact: true
	// replayed 10000 ops of mcf
}
