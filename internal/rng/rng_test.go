package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("sibling streams collided at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 1 << 20
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.002 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 30} {
		for i := 0; i < 10000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) returned %d", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 1 << 20
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, expect)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 1 << 21
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.005 {
		t.Errorf("gaussian mean %v not ~0", mean)
	}
	if math.Abs(variance-1) > 0.01 {
		t.Errorf("gaussian variance %v not ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(17)
	const n = 1 << 20
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal(5, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-5) > 0.02 {
		t.Errorf("mean %v not ~5", mean)
	}
	if math.Abs(sd-2) > 0.02 {
		t.Errorf("sd %v not ~2", sd)
	}
}

func TestTruncNormInRange(t *testing.T) {
	r := New(19)
	lo, hi := -0.4583, 0.4583 // the paper's ±2.75σ window with σ=1/6
	for i := 0; i < 200000; i++ {
		x := r.TruncNorm(0, 1.0/6, lo, hi)
		if x < lo || x > hi {
			t.Fatalf("TruncNorm out of [%v,%v]: %v", lo, hi, x)
		}
	}
}

func TestTruncNormPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TruncNorm with lo>hi did not panic")
		}
	}()
	New(1).TruncNorm(0, 1, 1, -1)
}

// Property: Intn output is always within bounds for arbitrary seeds and n.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the generator with a given seed is a pure function of the
// number of draws taken.
func TestReplayProperty(t *testing.T) {
	f := func(seed uint64, k8 uint8) bool {
		k := int(k8)
		a, b := New(seed), New(seed)
		for i := 0; i < k; i++ {
			a.Uint64()
			b.Uint64()
		}
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}

func BenchmarkTruncNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.TruncNorm(0, 1.0/6, -0.4583, 0.4583)
	}
	_ = sink
}
