// Package rng provides a fast, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the reproduction.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by its authors for mass statistical simulation. It is NOT
// cryptographically secure. Determinism matters here: the paper's Monte
// Carlo experiments must be reproducible run to run, and parallel workers
// must draw from provably disjoint, independently seeded streams, which
// Split provides.
package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64

	// cached second variate from the Gaussian polar method
	hasGauss bool
	gauss    float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, where its equidistribution is ideal.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro requires a nonzero state; SplitMix64 outputs are zero for at
	// most one of the four words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator stream for parallel work. The
// child is seeded from two draws of the parent, so distinct calls yield
// distinct streams and the parent remains usable.
func (r *Rand) Split() *Rand {
	return New(r.Uint64()*0x9e3779b97f4a7c15 ^ r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask32+a0*b1)>>32
	return hi, lo
}

// Norm returns a standard Gaussian variate via the Marsaglia polar method.
// The method produces two variates per acceptance; the second is cached.
func (r *Rand) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, sd float64) float64 {
	return mean + sd*r.Norm()
}

// TruncNorm returns a Gaussian variate with the given mean and standard
// deviation, conditioned on lying within [lo, hi]. It uses simple rejection,
// which is efficient for the wide windows used throughout the paper
// (±2.75 σ retains 99.4% of the mass). It panics if lo > hi or sd <= 0.
func (r *Rand) TruncNorm(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		panic("rng: TruncNorm with lo > hi")
	}
	if sd <= 0 {
		panic("rng: TruncNorm with non-positive sd")
	}
	for {
		x := r.Normal(mean, sd)
		if x >= lo && x <= hi {
			return x
		}
	}
}
