package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// memTarget is a plain in-memory Target.
type memTarget struct {
	buf []byte
}

func newMemTarget(blocks int) *memTarget {
	return &memTarget{buf: make([]byte, blocks*core.BlockBytes)}
}

func (m *memTarget) Name() string { return "mem" }

func (m *memTarget) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memTarget) WriteAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > int64(len(m.buf)) {
		return 0, errors.New("mem: write out of bounds")
	}
	return copy(m.buf[off:], p), nil
}

func (m *memTarget) Advance(float64) error { return nil }

func TestScheduleDeterminism(t *testing.T) {
	s := scheduleState{sched: Schedule{Every: 3, Start: 2, Times: 2}}
	var fires []int
	for i := 1; i <= 15; i++ {
		if s.hit() {
			fires = append(fires, i)
		}
	}
	// Eligible ops are 3,4,5,... (after Start=2); every 3rd fires: op 5
	// and op 8; Times=2 stops it there.
	want := []int{5, 8}
	if len(fires) != len(want) || fires[0] != want[0] || fires[1] != want[1] {
		t.Fatalf("schedule fired at %v, want %v", fires, want)
	}
}

func TestInjectedUncorrectableRead(t *testing.T) {
	d := New(newMemTarget(4), Plan{UncorrectableRead: Schedule{Every: 2}})
	p := make([]byte, 16)
	if _, err := d.ReadAt(p, 0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	_, err := d.ReadAt(p, 0)
	if !errors.Is(err, core.ErrUncorrectable) {
		t.Fatalf("read 2 = %v, want core.ErrUncorrectable", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2 = %v, want ErrInjected in chain", err)
	}
	if st := d.Stats(); st.UncorrectableReads != 1 || st.Reads != 2 {
		t.Fatalf("stats = %+v, want 1 injected / 2 reads", st)
	}
}

func TestInjectedWriteError(t *testing.T) {
	d := New(newMemTarget(4), Plan{})
	d.ArmWriteError(1)
	if _, err := d.WriteAt(make([]byte, 8), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write = %v, want ErrInjected", err)
	}
	if _, err := d.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("write after arm spent: %v", err)
	}
}

func TestCorruptAndHeal(t *testing.T) {
	d := New(newMemTarget(4), Plan{})
	d.CorruptBlock(1)
	p := make([]byte, core.BlockBytes)
	// Reads not touching block 1 still work.
	if _, err := d.ReadAt(p, 0); err != nil {
		t.Fatalf("read block 0: %v", err)
	}
	if _, err := d.ReadAt(p, core.BlockBytes); !errors.Is(err, core.ErrUncorrectable) {
		t.Fatalf("read corrupt block = %v, want uncorrectable", err)
	}
	// A partial write does not heal; a covering write does.
	if _, err := d.WriteAt(make([]byte, 8), core.BlockBytes); err != nil {
		t.Fatalf("partial write: %v", err)
	}
	if d.CorruptCount() != 1 {
		t.Fatal("partial write healed the block")
	}
	if _, err := d.WriteAt(make([]byte, core.BlockBytes), core.BlockBytes); err != nil {
		t.Fatalf("covering write: %v", err)
	}
	if d.CorruptCount() != 0 {
		t.Fatal("covering write did not heal")
	}
	if _, err := d.ReadAt(p, core.BlockBytes); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if st := d.Stats(); st.CorruptHeals != 1 {
		t.Fatalf("CorruptHeals = %d, want 1", st.CorruptHeals)
	}
}

func TestDriftMarking(t *testing.T) {
	d := New(newMemTarget(4), Plan{})
	d.DriftBlock(2)
	p := make([]byte, core.BlockBytes)
	// Drifted blocks still read fine.
	if _, err := d.ReadAt(p, 2*core.BlockBytes); err != nil {
		t.Fatalf("read drifted: %v", err)
	}
	if d.DriftedCount() != 1 {
		t.Fatal("read cleared drift marker")
	}
	if _, err := d.WriteAt(make([]byte, core.BlockBytes), 2*core.BlockBytes); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if d.DriftedCount() != 0 {
		t.Fatal("covering rewrite did not clear drift marker")
	}
}

func TestInjectedPanic(t *testing.T) {
	d := New(newMemTarget(4), Plan{Panic: Schedule{Every: 2}})
	if _, err := d.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		d.ReadAt(make([]byte, 8), 0)
		return false
	}()
	if !panicked {
		t.Fatal("scheduled panic did not fire")
	}
	// The device stays usable after the panic (the mutex was released).
	if _, err := d.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("op after panic: %v", err)
	}
	if st := d.Stats(); st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}
}

func TestLatencyInjection(t *testing.T) {
	d := New(newMemTarget(4), Plan{
		Latency:         Schedule{Every: 1},
		LatencyDuration: 5 * time.Millisecond,
	})
	start := time.Now()
	if _, err := d.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("read took %v, want ≥ 5ms", elapsed)
	}
}

// TestConnCut proves the wrapper delivers a partial frame and then
// fails both ends.
func TestConnCut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	received := make([]byte, 0, 64)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 64)
		for {
			n, err := conn.Read(buf)
			received = append(received, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := WrapConn(raw, ConnPlan{CutWriteAfter: 10})
	msg := bytes.Repeat([]byte{0xAB}, 16)
	n, err := c.Write(msg)
	if !errors.Is(err, ErrCut) || !errors.Is(err, ErrInjected) {
		t.Fatalf("write = %d, %v; want ErrCut", n, err)
	}
	if n != 10 {
		t.Fatalf("partial frame delivered %d bytes, want 10", n)
	}
	if _, err := c.Write(msg); !errors.Is(err, ErrCut) {
		t.Fatalf("write after cut = %v, want ErrCut", err)
	}
	if _, err := c.Read(make([]byte, 8)); !errors.Is(err, ErrCut) {
		t.Fatalf("read after cut = %v, want ErrCut", err)
	}
	wg.Wait()
	if len(received) != 10 {
		t.Fatalf("peer received %d bytes, want the 10-byte partial frame", len(received))
	}
}

func TestDialerBudgets(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(io.Discard, conn)
				conn.Close()
			}()
		}
	}()

	dial := Dialer(ln.Addr().String(), 7, 4, 16)
	conn, err := dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// The budget is in [4,16]; pushing 64 bytes must hit the cut.
	var total int
	var werr error
	for i := 0; i < 8; i++ {
		var n int
		n, werr = conn.Write(make([]byte, 8))
		total += n
		if werr != nil {
			break
		}
	}
	if !errors.Is(werr, ErrCut) {
		t.Fatalf("no cut after %d bytes: %v", total, werr)
	}
	if total < 4 || total > 16 {
		t.Fatalf("cut after %d bytes, want within [4,16]", total)
	}
}

// countBitDiff returns the number of differing bits between a and b.
func countBitDiff(a, b []byte) int {
	diff := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			diff += int(x & 1)
			x >>= 1
		}
	}
	return diff
}

func TestFlipStoredBitsArmed(t *testing.T) {
	mem := newMemTarget(4)
	d := New(mem, Plan{Seed: 11})

	orig := bytes.Repeat([]byte{0x5A}, core.BlockBytes)
	if _, err := d.WriteAt(orig, 2*core.BlockBytes); err != nil {
		t.Fatalf("write: %v", err)
	}

	d.FlipStoredBits(2, 3)
	got := make([]byte, core.BlockBytes)
	if _, err := d.ReadAt(got, 2*core.BlockBytes); err != nil {
		t.Fatalf("read: %v", err)
	}
	if diff := countBitDiff(orig, got); diff != 3 {
		t.Fatalf("read saw %d flipped bits, want 3", diff)
	}
	// The flips are physical: a second read sees the same damage.
	again := make([]byte, core.BlockBytes)
	if _, err := d.ReadAt(again, 2*core.BlockBytes); err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if !bytes.Equal(got, again) {
		t.Fatal("damage did not persist across reads")
	}
	// A covering rewrite clears it.
	if _, err := d.WriteAt(orig, 2*core.BlockBytes); err != nil {
		t.Fatalf("repair write: %v", err)
	}
	if _, err := d.ReadAt(again, 2*core.BlockBytes); err != nil {
		t.Fatalf("post-repair read: %v", err)
	}
	if !bytes.Equal(orig, again) {
		t.Fatal("rewrite did not clear the flipped bits")
	}
	if st := d.Stats(); st.BitFlips != 3 || st.BitFlipsFailed != 0 {
		t.Fatalf("stats = %+v, want 3 flips, 0 failed", st)
	}
}

func TestFlipScheduledDeterministic(t *testing.T) {
	run := func() (Stats, []byte) {
		mem := newMemTarget(2)
		d := New(mem, Plan{Seed: 5, BitFlip: Schedule{Every: 3}, BitFlipBits: 2})
		blk := bytes.Repeat([]byte{0xFF}, core.BlockBytes)
		if _, err := d.WriteAt(blk, 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		got := make([]byte, core.BlockBytes)
		for i := 0; i < 6; i++ {
			if _, err := d.ReadAt(got, 0); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
		return d.Stats(), got
	}
	st1, data1 := run()
	st2, data2 := run()
	// 6 reads with Every=3 fire twice, 2 bits per firing.
	if st1.BitFlips != 4 {
		t.Fatalf("BitFlips = %d, want 4", st1.BitFlips)
	}
	if st1 != st2 || !bytes.Equal(data1, data2) {
		t.Fatal("scheduled flips are not deterministic across identical runs")
	}
}

func TestConnBitFlips(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	const total = 4096
	echoed := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, total)
		if _, err := io.ReadFull(conn, buf); err != nil {
			echoed <- nil
			return
		}
		echoed <- buf
		conn.Write(buf) // echo back through the flaky side's Read path
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := WrapConn(raw, ConnPlan{FlipReadOneIn: 64, FlipWriteOneIn: 64, FlipSeed: 9})
	defer c.Close()

	sent := bytes.Repeat([]byte{0x00}, total)
	if _, err := c.Write(sent); err != nil {
		t.Fatalf("write: %v", err)
	}
	peerGot := <-echoed
	if peerGot == nil {
		t.Fatal("peer read failed")
	}
	wireDiff := countBitDiff(sent, peerGot)
	if wireDiff == 0 {
		t.Fatal("no bits flipped on the write path over 4 KiB at 1/64")
	}
	// The caller's buffer must be untouched — flips act on a copy.
	if !bytes.Equal(sent, make([]byte, total)) {
		t.Fatal("Write modified the caller's buffer")
	}

	back := make([]byte, total)
	if _, err := io.ReadFull(c, back); err != nil {
		t.Fatalf("read: %v", err)
	}
	readDiff := countBitDiff(peerGot, back)
	if readDiff == 0 {
		t.Fatal("no bits flipped on the read path")
	}
	if got := c.BitsFlipped(); got != uint64(wireDiff+readDiff) {
		t.Fatalf("BitsFlipped = %d, want %d+%d", got, wireDiff, readDiff)
	}
}
