package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
)

// ErrCut is wrapped by every injected connection failure.
var ErrCut = fmt.Errorf("connection cut: %w", ErrInjected)

// ConnPlan configures a flaky connection. Budgets are byte counts; when
// one is exhausted the connection delivers the remaining bytes of the
// current call (a partial frame, exactly what a mid-write reset
// produces), closes the underlying conn, and fails every later call.
type ConnPlan struct {
	// CutReadAfter cuts after this many bytes have been read
	// (0 = unlimited).
	CutReadAfter int64
	// CutWriteAfter cuts after this many bytes have been written
	// (0 = unlimited).
	CutWriteAfter int64

	// FlipReadOneIn flips one random bit in roughly 1 of every N bytes
	// read (0 disables) — in-flight corruption the frame CRC must catch.
	FlipReadOneIn int64
	// FlipWriteOneIn flips one random bit in roughly 1 of every N bytes
	// written (0 disables). Writes flip a copy; the caller's buffer is
	// never modified.
	FlipWriteOneIn int64
	// FlipSeed seeds the per-connection flip generator (default 1).
	FlipSeed uint64
}

// Conn wraps a net.Conn with injected drops, partial frames, and
// resets. It is safe for one reader plus one writer goroutine, the
// contract net.Conn itself promises.
type Conn struct {
	net.Conn

	mu          sync.Mutex
	readBudget  int64 // <0 = unlimited
	writeBudget int64
	cut         bool

	flipRdOneIn int64
	flipWrOneIn int64
	flipRng     *rand.Rand
	bitsFlipped uint64
}

// WrapConn applies plan to conn.
func WrapConn(conn net.Conn, plan ConnPlan) *Conn {
	c := &Conn{Conn: conn, readBudget: -1, writeBudget: -1}
	if plan.CutReadAfter > 0 {
		c.readBudget = plan.CutReadAfter
	}
	if plan.CutWriteAfter > 0 {
		c.writeBudget = plan.CutWriteAfter
	}
	c.flipRdOneIn = plan.FlipReadOneIn
	c.flipWrOneIn = plan.FlipWriteOneIn
	if c.flipRdOneIn > 0 || c.flipWrOneIn > 0 {
		seed := plan.FlipSeed
		if seed == 0 {
			seed = 1
		}
		c.flipRng = rand.New(rand.NewSource(int64(seed)))
	}
	return c
}

// BitsFlipped returns how many in-flight bits this connection flipped.
func (c *Conn) BitsFlipped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bitsFlipped
}

// flipBits walks p and flips one random bit in roughly 1 of every oneIn
// bytes, returning how many bits it flipped. Caller holds no lock; the
// per-conn rng is guarded here.
func (c *Conn) flipBits(p []byte, oneIn int64) int {
	if oneIn <= 0 || len(p) == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	flipped := 0
	for i := range p {
		if c.flipRng.Int63n(oneIn) == 0 {
			p[i] ^= 1 << c.flipRng.Intn(8)
			flipped++
		}
	}
	c.bitsFlipped += uint64(flipped)
	return flipped
}

// Cut severs the connection immediately; in-flight and future calls
// fail and the underlying conn is closed.
func (c *Conn) Cut() {
	c.mu.Lock()
	c.cut = true
	c.mu.Unlock()
	c.Conn.Close()
}

// take reserves up to want bytes from a budget. It returns how many may
// pass and whether the connection dies after they do.
func take(budget *int64, want int) (allowed int, dies bool) {
	if *budget < 0 {
		return want, false
	}
	if int64(want) >= *budget {
		allowed = int(*budget)
		*budget = 0
		return allowed, true
	}
	*budget -= int64(want)
	return want, false
}

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, fmt.Errorf("faultinject: read on cut conn: %w", ErrCut)
	}
	allowed, dies := take(&c.readBudget, len(p))
	if dies {
		c.cut = true
	}
	c.mu.Unlock()
	if !dies {
		n, err := c.Conn.Read(p)
		if n > 0 {
			c.flipBits(p[:n], c.flipRdOneIn)
		}
		return n, err
	}
	n := 0
	if allowed > 0 {
		n, _ = c.Conn.Read(p[:allowed])
	}
	c.Conn.Close()
	return n, fmt.Errorf("faultinject: read: %w", ErrCut)
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, fmt.Errorf("faultinject: write on cut conn: %w", ErrCut)
	}
	allowed, dies := take(&c.writeBudget, len(p))
	if dies {
		c.cut = true
	}
	c.mu.Unlock()
	if !dies {
		if c.flipWrOneIn > 0 {
			cp := make([]byte, len(p))
			copy(cp, p)
			c.flipBits(cp, c.flipWrOneIn)
			return c.Conn.Write(cp)
		}
		return c.Conn.Write(p)
	}
	// Deliver a partial frame to the peer, then reset.
	n := 0
	if allowed > 0 {
		n, _ = c.Conn.Write(p[:allowed])
	}
	c.Conn.Close()
	return n, fmt.Errorf("faultinject: write: %w", ErrCut)
}

// Dialer returns a dial function whose connections each get read and
// write cut budgets drawn uniformly from [minBytes, maxBytes] with a
// seeded generator — the repeatable "network blips every so often"
// workload for retry-layer tests. maxBytes ≤ 0 disables cutting.
func Dialer(addr string, seed uint64, minBytes, maxBytes int64) func() (net.Conn, error) {
	if seed == 0 {
		seed = 1
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(int64(seed)))
	return func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if maxBytes <= 0 {
			return conn, nil
		}
		mu.Lock()
		span := maxBytes - minBytes + 1
		if span < 1 {
			span = 1
		}
		plan := ConnPlan{
			CutReadAfter:  minBytes + rng.Int63n(span),
			CutWriteAfter: minBytes + rng.Int63n(span),
		}
		mu.Unlock()
		return WrapConn(conn, plan), nil
	}
}

// FlipDialer returns a dial function whose connections each flip one
// random bit in roughly 1 of every oneIn bytes in both directions,
// with per-connection seeds derived deterministically from seed — the
// repeatable "noisy wire" workload for frame-CRC tests. oneIn ≤ 0
// disables flipping.
func FlipDialer(addr string, seed uint64, oneIn int64) func() (net.Conn, error) {
	if seed == 0 {
		seed = 1
	}
	var mu sync.Mutex
	conns := uint64(0)
	return func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if oneIn <= 0 {
			return conn, nil
		}
		mu.Lock()
		conns++
		connSeed := seed + conns*0x9E3779B97F4A7C15 // golden-ratio stride
		mu.Unlock()
		return WrapConn(conn, ConnPlan{
			FlipReadOneIn:  oneIn,
			FlipWriteOneIn: oneIn,
			FlipSeed:       connSeed,
		}), nil
	}
}

// IsInjected reports whether err originates from this package.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }
