// Package faultinject provides deterministic, seedable fault injection
// for the serving stack: a device wrapper that produces uncorrectable
// reads, write errors, latency spikes, and panics on a configurable
// schedule, and a net.Conn wrapper that cuts connections mid-frame.
//
// It is the test substrate for the self-healing machinery in
// internal/pcmserve (shard supervisor, scrubber, retrying client): the
// device model knows how to fail, and this package makes those failures
// reproducible on demand. Everything is driven either by a Schedule
// (fire every Nth operation, optionally a bounded number of times), by
// a seeded probability, or by explicit one-shot arming from a test.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// Target is the device surface the wrapper intercepts — the same
// contract internal/pcmserve expects of a per-shard device.
type Target interface {
	io.ReaderAt
	io.WriterAt
	Advance(dt float64) error
	Name() string
}

// ErrInjected is the base sentinel wrapped by every injected failure,
// so tests can tell injected faults from organic ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Schedule fires deterministically on an operation counter. The zero
// value never fires.
type Schedule struct {
	// Every fires on every Nth eligible operation (0 disables).
	Every uint64
	// Start skips the first Start eligible operations.
	Start uint64
	// Times bounds the total number of firings (0 = unlimited).
	Times uint64
}

// scheduleState tracks per-family counters for one Schedule.
type scheduleState struct {
	sched Schedule
	seen  uint64
	fired uint64
}

// hit advances the counter and reports whether the schedule fires.
func (s *scheduleState) hit() bool {
	if s.sched.Every == 0 {
		return false
	}
	if s.sched.Times > 0 && s.fired >= s.sched.Times {
		return false
	}
	s.seen++
	if s.seen <= s.sched.Start {
		return false
	}
	if (s.seen-s.sched.Start)%s.sched.Every != 0 {
		return false
	}
	s.fired++
	return true
}

// Plan configures a Device wrapper. All schedules count only the
// operations of their own family (reads for UncorrectableRead, writes
// for WriteError, any op for Panic and Latency).
type Plan struct {
	// Seed drives the probabilistic knobs (default 1).
	Seed uint64

	// UncorrectableRead makes ReadAt fail with core.ErrUncorrectable.
	UncorrectableRead Schedule
	// WriteError makes WriteAt fail without touching the device.
	WriteError Schedule
	// Panic panics the calling goroutine (the shard owner) mid-op.
	Panic Schedule
	// Latency sleeps LatencyDuration before the op proceeds.
	Latency         Schedule
	LatencyDuration time.Duration

	// BitFlip flips BitFlipBits random bits in the stored bytes of the
	// first 64-byte block a scheduled read touches, BEFORE the read is
	// served — modeling resistance drift past a level boundary. The
	// flips are physical: they persist in the underlying store until a
	// covering rewrite (an ECC read-repair or scrub) replaces them.
	BitFlip     Schedule
	BitFlipBits int // bits flipped per firing (default 1)

	// Probabilistic variants, applied after the schedules (0 disables).
	PUncorrectable float64
	PWriteError    float64
}

// Stats counts injected events; read it with Device.Stats.
type Stats struct {
	Reads, Writes, Advances uint64 // operations seen

	UncorrectableReads uint64 // injected read failures
	WriteErrors        uint64 // injected write failures
	Panics             uint64 // injected panics
	LatencySpikes      uint64

	CorruptHeals uint64 // corrupt blocks cleared by a covering write
	DriftHeals   uint64 // drifted blocks cleared by a covering write

	BitFlips       uint64 // stored bits flipped (scheduled + armed)
	BitFlipsFailed uint64 // flip attempts that could not touch the store
}

// Device wraps a Target with fault injection. It is safe for concurrent
// use by the device-owning goroutine plus any number of test goroutines
// arming faults; injected latency sleeps outside the lock.
type Device struct {
	inner Target

	mu      sync.Mutex
	rng     *rand.Rand
	uncorr  scheduleState
	wrErr   scheduleState
	panicS  scheduleState
	latency scheduleState
	flip    scheduleState
	plan    Plan

	armedPanics      int            // one-shot: next N ops panic
	armedReadErrs    int            // one-shot: next N reads fail uncorrectable
	armedWriteErrs   int            // one-shot: next N writes fail
	forcedLatency    time.Duration  // persistent: every op sleeps this long
	corrupt, drifted map[int64]bool // block index → armed state
	armedFlips       map[int64]int  // block index → bits to flip on next read

	stats Stats
}

var _ Target = (*Device)(nil)

// New wraps dev according to plan.
func New(dev Target, plan Plan) *Device {
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	if plan.BitFlipBits == 0 {
		plan.BitFlipBits = 1
	}
	return &Device{
		inner:      dev,
		rng:        rand.New(rand.NewSource(int64(plan.Seed))),
		uncorr:     scheduleState{sched: plan.UncorrectableRead},
		wrErr:      scheduleState{sched: plan.WriteError},
		panicS:     scheduleState{sched: plan.Panic},
		latency:    scheduleState{sched: plan.Latency},
		flip:       scheduleState{sched: plan.BitFlip},
		plan:       plan,
		corrupt:    make(map[int64]bool),
		drifted:    make(map[int64]bool),
		armedFlips: make(map[int64]int),
	}
}

// Name tags the wrapped device so stack descriptions show the wrapper.
func (d *Device) Name() string { return "fi(" + d.inner.Name() + ")" }

// RemapStats forwards the wrapped device's FREE-p remapping occupancy,
// so spare-pool gauge collection sees through the fault wrapper (zeros
// when the target does not report it).
func (d *Device) RemapStats() (reserveLeft, retired int) {
	if rr, ok := d.inner.(interface{ RemapStats() (int, int) }); ok {
		return rr.RemapStats()
	}
	return 0, 0
}

// RetireBlock forwards the wrapped device's force-remap escalation path
// (pcmserve's integrity layer retires blocks whose corruption exceeded
// BCH capability), so escalation sees through the fault wrapper.
func (d *Device) RetireBlock(b int) error {
	if r, ok := d.inner.(interface{ RetireBlock(int) error }); ok {
		return r.RetireBlock(b)
	}
	return fmt.Errorf("faultinject: %s cannot retire blocks", d.inner.Name())
}

// Stats returns a snapshot of operation and injection counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// CorruptBlock arms a persistent uncorrectable fault on the 64-byte
// block with the given index: every read touching it fails with
// core.ErrUncorrectable until a write covering the whole block heals it
// (the model of a drifted-beyond-ECC block that a scrub rewrite can
// reclaim).
func (d *Device) CorruptBlock(block int64) {
	d.mu.Lock()
	d.corrupt[block] = true
	d.mu.Unlock()
}

// DriftBlock arms a correctable-drift marker on a block: reads still
// succeed, but the block stays marked until a covering write (a scrub
// rewrite) heals it. DriftedCount observes the healing.
func (d *Device) DriftBlock(block int64) {
	d.mu.Lock()
	d.drifted[block] = true
	d.mu.Unlock()
}

// DriftedCount returns the number of blocks still marked as drifted.
func (d *Device) DriftedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.drifted)
}

// CorruptCount returns the number of blocks still armed corrupt.
func (d *Device) CorruptCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.corrupt)
}

// FlipStoredBits arms a one-shot bit-flip fault on the 64-byte block
// with the given index: the next read touching it first flips `bits`
// random stored bits in that block (chosen by the seeded rng), then
// serves the damaged data. The flips are physical — they persist until
// a covering rewrite — so an ECC layer above sees genuine stored-data
// corruption it can correct and repair in place.
func (d *Device) FlipStoredBits(block int64, bits int) {
	if bits < 1 {
		bits = 1
	}
	d.mu.Lock()
	d.armedFlips[block] += bits
	d.mu.Unlock()
}

// ArmPanic makes the next n operations panic (one-shot, on top of the
// Panic schedule).
func (d *Device) ArmPanic(n int) {
	d.mu.Lock()
	d.armedPanics += n
	d.mu.Unlock()
}

// ArmReadError makes the next n reads fail with core.ErrUncorrectable.
func (d *Device) ArmReadError(n int) {
	d.mu.Lock()
	d.armedReadErrs += n
	d.mu.Unlock()
}

// ArmWriteError makes the next n writes fail.
func (d *Device) ArmWriteError(n int) {
	d.mu.Lock()
	d.armedWriteErrs += n
	d.mu.Unlock()
}

// SetLatency makes every subsequent operation sleep dur before
// proceeding, until cleared with SetLatency(0). Unlike the Latency
// schedule (fixed in the Plan at construction), this models a node
// that turns into a straggler mid-run — a degraded disk, a GC storm —
// and can be armed and disarmed from a running test.
func (d *Device) SetLatency(dur time.Duration) {
	d.mu.Lock()
	d.forcedLatency = dur
	d.mu.Unlock()
}

// blocksTouched reports the inclusive block index range of [off, off+n).
func blocksTouched(off int64, n int) (lo, hi int64) {
	if n <= 0 {
		return off / core.BlockBytes, off/core.BlockBytes - 1
	}
	return off / core.BlockBytes, (off + int64(n) - 1) / core.BlockBytes
}

// preOp runs the op-family-independent injections (latency, panic) and
// returns a sleep to perform outside the lock.
func (d *Device) preOp() time.Duration {
	var sleep time.Duration
	if d.latency.hit() {
		d.stats.LatencySpikes++
		sleep = d.plan.LatencyDuration
	}
	if d.forcedLatency > sleep {
		d.stats.LatencySpikes++
		sleep = d.forcedLatency
	}
	if d.armedPanics > 0 {
		d.armedPanics--
		d.stats.Panics++
		d.mu.Unlock()
		panic(fmt.Sprintf("faultinject: injected panic (armed): %v", ErrInjected))
	}
	if d.panicS.hit() {
		d.stats.Panics++
		d.mu.Unlock()
		panic(fmt.Sprintf("faultinject: injected panic (scheduled): %v", ErrInjected))
	}
	return sleep
}

// ReadAt injects scheduled/armed/probabilistic uncorrectable reads and
// corrupt-block faults, then delegates.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	d.stats.Reads++
	sleep := d.preOp() // may panic (unlocks first)
	fail := false
	lo, hi := blocksTouched(off, len(p))
	switch {
	case d.armedReadErrs > 0:
		d.armedReadErrs--
		fail = true
	case d.uncorr.hit():
		fail = true
	case d.plan.PUncorrectable > 0 && d.rng.Float64() < d.plan.PUncorrectable:
		fail = true
	default:
		for b := lo; b <= hi; b++ {
			if d.corrupt[b] {
				fail = true
				break
			}
		}
	}
	if fail {
		d.stats.UncorrectableReads++
	}
	// Collect bit flips to apply before serving the read: armed flips on
	// any touched block, plus a scheduled firing targeting the first
	// touched block. Bit positions are drawn under the lock (seeded rng)
	// but applied after unlocking, on the calling goroutine — the same
	// goroutine that owns the inner device.
	type flipJob struct {
		block int64
		bits  []int
	}
	var flips []flipJob
	if !fail && lo <= hi {
		pick := func(block int64, k int) {
			job := flipJob{block: block}
			chosen := map[int]bool{}
			for len(job.bits) < k {
				bit := d.rng.Intn(core.BlockBytes * 8)
				if chosen[bit] {
					continue
				}
				chosen[bit] = true
				job.bits = append(job.bits, bit)
			}
			flips = append(flips, job)
		}
		for b := lo; b <= hi; b++ {
			if k := d.armedFlips[b]; k > 0 {
				delete(d.armedFlips, b)
				pick(b, k)
			}
		}
		if d.flip.hit() {
			pick(lo, d.plan.BitFlipBits)
		}
	}
	d.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fail {
		return 0, fmt.Errorf("faultinject: read at %d: %w: %w", off, ErrInjected, core.ErrUncorrectable)
	}
	for _, job := range flips {
		d.applyFlips(job.block, job.bits)
	}
	return d.inner.ReadAt(p, off)
}

// applyFlips physically flips the given bit positions in one stored
// 64-byte block via a read-modify-write on the inner device. Must run
// on the device-owning goroutine (it is called from ReadAt).
func (d *Device) applyFlips(block int64, bits []int) {
	buf := make([]byte, core.BlockBytes)
	off := block * core.BlockBytes
	if _, err := d.inner.ReadAt(buf, off); err != nil {
		d.mu.Lock()
		d.stats.BitFlipsFailed += uint64(len(bits))
		d.mu.Unlock()
		return
	}
	for _, bit := range bits {
		buf[bit/8] ^= 1 << (bit % 8)
	}
	if _, err := d.inner.WriteAt(buf, off); err != nil {
		d.mu.Lock()
		d.stats.BitFlipsFailed += uint64(len(bits))
		d.mu.Unlock()
		return
	}
	d.mu.Lock()
	d.stats.BitFlips += uint64(len(bits))
	d.mu.Unlock()
}

// WriteAt injects scheduled/armed/probabilistic write errors; on a
// successful delegate write it heals corrupt and drifted blocks fully
// covered by the written range.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	d.stats.Writes++
	sleep := d.preOp()
	fail := false
	switch {
	case d.armedWriteErrs > 0:
		d.armedWriteErrs--
		fail = true
	case d.wrErr.hit():
		fail = true
	case d.plan.PWriteError > 0 && d.rng.Float64() < d.plan.PWriteError:
		fail = true
	}
	if fail {
		d.stats.WriteErrors++
	}
	d.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fail {
		return 0, fmt.Errorf("faultinject: write at %d: %w", off, ErrInjected)
	}
	n, err := d.inner.WriteAt(p, off)
	if n > 0 {
		d.healCovered(off, n)
	}
	return n, err
}

// healCovered clears armed corrupt/drift state for blocks whose full
// 64 bytes fall inside the successfully written range.
func (d *Device) healCovered(off int64, n int) {
	first := (off + core.BlockBytes - 1) / core.BlockBytes // first block starting at/after off
	last := (off + int64(n)) / core.BlockBytes             // one past the last fully covered block
	d.mu.Lock()
	for b := first; b < last; b++ {
		if d.corrupt[b] {
			delete(d.corrupt, b)
			d.stats.CorruptHeals++
		}
		if d.drifted[b] {
			delete(d.drifted, b)
			d.stats.DriftHeals++
		}
	}
	d.mu.Unlock()
}

// Advance passes through (it participates in panic/latency schedules).
func (d *Device) Advance(dt float64) error {
	d.mu.Lock()
	d.stats.Advances++
	sleep := d.preOp()
	d.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return d.inner.Advance(dt)
}
