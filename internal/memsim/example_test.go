package memsim_test

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/trace"
)

// Run the Figure 16 comparison for one workload: the refreshed 4LC
// baseline against the refresh-free 3LC proposal.
func Example() {
	gen := func() trace.Generator { return trace.New(trace.STREAM, 100_000, 1) }
	ref := memsim.Run(memsim.ConfigFor(memsim.FourLCRef), gen())
	three := memsim.Run(memsim.ConfigFor(memsim.ThreeLC), gen())

	fmt.Printf("4LC-REF refresh ops: >0 = %v\n", ref.RefreshOps > 0)
	fmt.Printf("3LC refresh ops:     %d\n", three.RefreshOps)
	fmt.Printf("3LC faster: %v\n", three.ExecNs < ref.ExecNs)
	fmt.Printf("3LC less energy: %v\n", three.TotalEnergyNJ() < ref.TotalEnergyNJ())
	// Output:
	// 4LC-REF refresh ops: >0 = true
	// 3LC refresh ops:     0
	// 3LC faster: true
	// 3LC less energy: true
}
