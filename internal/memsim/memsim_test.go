package memsim

import (
	"testing"
	"time"

	"repro/internal/trace"
)

const testOps = 120000

func run(t *testing.T, d Design, p trace.Profile) Stats {
	t.Helper()
	cfg := ConfigFor(d)
	s := Run(cfg, trace.New(p, testOps, 1))
	s.Design = d.String()
	if s.ExecNs <= 0 || s.Instructions <= 0 {
		t.Fatalf("%v/%s: degenerate stats %+v", d, p.WorkloadName, s)
	}
	return s
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets x 2 ways
	if hit, _ := c.Access(0, false); hit {
		t.Fatal("cold miss reported as hit")
	}
	if hit, _ := c.Access(0, false); !hit {
		t.Fatal("second access missed")
	}
	if hit, _ := c.Access(63, true); !hit {
		t.Fatal("same-line access missed")
	}
	// Fill the set of address 0 (same set every 8 lines = 512 bytes).
	c.Access(512, false)
	hit, ev := c.Access(1024, false) // evicts LRU (addr 0's line, dirty)
	if hit {
		t.Fatal("conflict access hit")
	}
	if !ev.Valid || !ev.Dirty || ev.Addr != 0 {
		t.Fatalf("eviction = %+v, want dirty line 0", ev)
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(256, 4, 64) // one set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.Access(i*64, false)
	}
	c.Access(0, false)           // touch line 0: now MRU
	_, ev := c.Access(4*64, false) // evict LRU = line 1
	if ev.Addr != 64 {
		t.Fatalf("evicted %#x, want 0x40", ev.Addr)
	}
}

func TestConfigTable5Anchors(t *testing.T) {
	cfg := Table5()
	if got := cfg.writeTokenIntervalNs(); got != 1525 && got != 1600 {
		// 64B / 40MiB/s = 1525 ns (the paper speaks of a 6.4 µs
		// four-write-window, i.e. 1.6 µs per write with decimal MB).
		t.Errorf("write token interval = %d ns", got)
	}
	tick := cfg.refreshTickNs()
	// 17 min / (16GB/64B/8 banks) ≈ 30.4 µs.
	if tick < 28000 || tick < 0 || tick > 33000 {
		t.Errorf("refresh tick = %d ns, want ~30400", tick)
	}
	if ConfigFor(ThreeLC).ECCReadAdderNs != 5 {
		t.Error("3LC read adder should be 5 ns")
	}
	if ConfigFor(FourLCNoRef).Refresh != RefreshOff {
		t.Error("NO-REF should disable refresh")
	}
}

func TestRefreshOccursAtExpectedRate(t *testing.T) {
	s := run(t, FourLCRef, trace.STREAM)
	tick := ConfigFor(FourLCRef).refreshTickNs()
	expected := float64(s.ExecNs) / float64(tick) * 1 // per bank staggering ⇒ one op per tick overall per bank
	// Total refresh ops ≈ banks × execNs/tick? No: each bank refreshes
	// every tick, so total = banks × (ExecNs / tick).
	expected = float64(ConfigFor(FourLCRef).Banks) * float64(s.ExecNs) / float64(tick)
	ratio := float64(s.RefreshOps) / expected
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("refresh ops = %d, expected ~%.0f", s.RefreshOps, expected)
	}
}

func TestFigure16OrderingMemoryIntensive(t *testing.T) {
	// The central Figure 16 shape: for memory-intensive workloads,
	// removing refresh contention (REF → REF-OPT → NO-REF) and shrinking
	// the ECC adder (3LC) each help execution time.
	for _, p := range []trace.Profile{trace.STREAM, trace.Mcf, trace.Libquantum, trace.Lbm} {
		ref := run(t, FourLCRef, p)
		opt := run(t, FourLCRefOpt, p)
		noref := run(t, FourLCNoRef, p)
		three := run(t, ThreeLC, p)
		if !(ref.ExecNs >= opt.ExecNs) {
			t.Errorf("%s: REF (%d) not slower than REF-OPT (%d)", p.WorkloadName, ref.ExecNs, opt.ExecNs)
		}
		if !(opt.ExecNs >= noref.ExecNs) {
			t.Errorf("%s: REF-OPT (%d) not slower than NO-REF (%d)", p.WorkloadName, opt.ExecNs, noref.ExecNs)
		}
		if !(noref.ExecNs >= three.ExecNs) {
			t.Errorf("%s: NO-REF (%d) not slower than 3LC (%d)", p.WorkloadName, noref.ExecNs, three.ExecNs)
		}
		// And the total 3LC gain over 4LC-REF must be substantial (the
		// paper reports 33% higher performance on average).
		speedup := float64(ref.ExecNs) / float64(three.ExecNs)
		if speedup < 1.05 {
			t.Errorf("%s: 3LC speedup over 4LC-REF only %.3f", p.WorkloadName, speedup)
		}
	}
}

func TestFigure16NamdInsensitive(t *testing.T) {
	// namd is compute-bound: refresh and ECC latency barely matter. A
	// longer trace amortizes the cold misses that dominate short runs.
	const ops = 600000
	ref := Run(ConfigFor(FourLCRef), trace.New(trace.Namd, ops, 1))
	three := Run(ConfigFor(ThreeLC), trace.New(trace.Namd, ops, 1))
	ratio := float64(ref.ExecNs) / float64(three.ExecNs)
	if ratio > 1.06 {
		t.Errorf("namd speedup %.3f; should be insensitive to the memory system", ratio)
	}
}

func TestFigure16EnergyShape(t *testing.T) {
	// 3LC consumes less energy than 4LC-REF on memory-intensive
	// workloads (the paper reports 24% lower on average): no refresh
	// writes, and shorter runtime cuts static energy.
	for _, p := range []trace.Profile{trace.STREAM, trace.Lbm} {
		ref := run(t, FourLCRef, p)
		three := run(t, ThreeLC, p)
		if three.TotalEnergyNJ() >= ref.TotalEnergyNJ() {
			t.Errorf("%s: 3LC energy %.0f not below 4LC-REF %.0f",
				p.WorkloadName, three.TotalEnergyNJ(), ref.TotalEnergyNJ())
		}
		if ref.EnergyRefresh <= 0 {
			t.Errorf("%s: 4LC-REF shows no refresh energy", p.WorkloadName)
		}
		if three.EnergyRefresh != 0 {
			t.Errorf("%s: 3LC shows refresh energy", p.WorkloadName)
		}
		// Section 7: "3LC's performance improvements also imply higher
		// activity factors hence higher power" — power must not drop
		// anywhere near as fast as energy.
		if three.AvgPowerW() < 0.95*ref.AvgPowerW() {
			t.Errorf("%s: 3LC power %.4f W fell below 4LC-REF %.4f W",
				p.WorkloadName, three.AvgPowerW(), ref.AvgPowerW())
		}
	}
}

func TestRefreshConsumesWriteBandwidth(t *testing.T) {
	// REF-OPT differs from NO-REF only through write-bandwidth theft; on
	// a write-heavy workload that must cost time.
	opt := run(t, FourLCRefOpt, trace.Lbm)
	noref := run(t, FourLCNoRef, trace.Lbm)
	if opt.ExecNs <= noref.ExecNs {
		t.Errorf("REF-OPT (%d) not slower than NO-REF (%d) on write-heavy lbm",
			opt.ExecNs, noref.ExecNs)
	}
}

func TestCacheFiltersNamd(t *testing.T) {
	// namd's 1 MB hot set lives in L1+L2: PCM sees very little traffic.
	s := run(t, ThreeLC, trace.Namd)
	missRate := float64(s.MemReads) / float64(s.MemOps)
	if missRate > 0.2 {
		t.Errorf("namd PCM read rate %v; working set should mostly fit", missRate)
	}
	// STREAM misses everywhere.
	st := run(t, ThreeLC, trace.STREAM)
	if float64(st.MemReads)/float64(st.MemOps) < 0.05 {
		t.Error("STREAM traffic entirely absorbed by caches; generator broken")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := run(t, FourLCRef, trace.Bzip2)
	if s.MemReads == 0 || s.MemWrites == 0 {
		t.Fatalf("no memory traffic: %+v", s)
	}
	if s.TotalEnergyNJ() <= 0 || s.AvgPowerW() <= 0 {
		t.Fatal("energy accounting broken")
	}
	if s.AvgReadLatencyNs() < float64(Table5().ReadLatencyNs) {
		t.Errorf("avg read latency %v below array latency", s.AvgReadLatencyNs())
	}
	if ipc := s.IPC(Table5()); ipc <= 0 || ipc > 1.01 {
		t.Errorf("IPC = %v", ipc)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(ConfigFor(ThreeLC), trace.New(trace.Mcf, 20000, 5))
	b := Run(ConfigFor(ThreeLC), trace.New(trace.Mcf, 20000, 5))
	if a != b {
		t.Fatal("same configuration and seed diverged")
	}
}

func TestDesignString(t *testing.T) {
	want := []string{"4LC-REF", "4LC-REF-OPT", "4LC-NO-REF", "3LC"}
	for i, d := range Designs() {
		if d.String() != want[i] {
			t.Errorf("design %d = %s", i, d)
		}
	}
}

func TestRefreshIntervalScaling(t *testing.T) {
	// Halving the refresh interval doubles refresh work and cannot make
	// execution faster.
	cfg := ConfigFor(FourLCRef)
	slow := Run(cfg, trace.New(trace.STREAM, testOps, 2))
	cfg.RefreshIntervalNs = (8*time.Minute + 30*time.Second).Nanoseconds()
	fast := Run(cfg, trace.New(trace.STREAM, testOps, 2))
	if fast.RefreshOps <= slow.RefreshOps {
		t.Errorf("refresh ops did not increase: %d vs %d", fast.RefreshOps, slow.RefreshOps)
	}
	if fast.ExecNs < slow.ExecNs {
		t.Errorf("more refresh made execution faster: %d vs %d", fast.ExecNs, slow.ExecNs)
	}
}

func TestOverSubscribedRefreshDoesNotStarveWrites(t *testing.T) {
	// Regression: at a 1-minute interval the refresh schedule demands
	// more than the device's entire write bandwidth. The controller must
	// (a) terminate, (b) still complete every foreground write, and
	// (c) give refresh no more than ~90% of issued write slots.
	cfg := ConfigFor(FourLCRef)
	cfg.RefreshIntervalNs = int64(time.Minute)
	s := Run(cfg, trace.New(trace.Lbm, 60000, 4))
	if s.MemWrites == 0 {
		t.Fatal("foreground writes starved to zero")
	}
	baseline := Run(ConfigFor(FourLCNoRef), trace.New(trace.Lbm, 60000, 4))
	if s.MemWrites != baseline.MemWrites {
		t.Fatalf("completed writes differ: %d vs %d", s.MemWrites, baseline.MemWrites)
	}
	share := float64(s.RefreshOps) / float64(s.RefreshOps+s.MemWrites)
	if share > 0.95 {
		t.Fatalf("refresh took %.0f%% of write slots; alternation broken", 100*share)
	}
	if s.ExecNs < 3*baseline.ExecNs {
		t.Fatalf("over-subscribed refresh barely hurt: %d vs %d ns", s.ExecNs, baseline.ExecNs)
	}
}

func TestWriteCancellationHelpsReads(t *testing.T) {
	// On a write-heavy workload, letting reads abort in-flight writes
	// must reduce average demand-read latency, at the cost of some
	// cancelled (retried) writes.
	cfg := ConfigFor(ThreeLC)
	base := Run(cfg, trace.New(trace.Lbm, testOps, 3))
	cfg.WriteCancellation = true
	canc := Run(cfg, trace.New(trace.Lbm, testOps, 3))
	if canc.CancelledWrites == 0 {
		t.Fatal("no writes were ever cancelled on a write-heavy workload")
	}
	if base.CancelledWrites != 0 {
		t.Fatal("cancellation occurred while disabled")
	}
	if canc.AvgReadLatencyNs() >= base.AvgReadLatencyNs() {
		t.Errorf("read latency did not improve: %.0f vs %.0f ns",
			canc.AvgReadLatencyNs(), base.AvgReadLatencyNs())
	}
	// Completed write counts must match: every cancellation retries.
	if canc.MemWrites != base.MemWrites {
		t.Errorf("completed writes differ: %d vs %d", canc.MemWrites, base.MemWrites)
	}
}

func TestWritePausingBeatsCancellationOnThroughput(t *testing.T) {
	// Pausing keeps write progress, so on a write-heavy workload it must
	// finish no later than cancellation while matching its read-latency
	// benefit.
	base := Run(ConfigFor(ThreeLC), trace.New(trace.Lbm, testOps, 3))
	cfgC := ConfigFor(ThreeLC)
	cfgC.WriteCancellation = true
	canc := Run(cfgC, trace.New(trace.Lbm, testOps, 3))
	cfgP := ConfigFor(ThreeLC)
	cfgP.WritePausing = true
	paus := Run(cfgP, trace.New(trace.Lbm, testOps, 3))

	if paus.PausedWrites == 0 {
		t.Fatal("no writes were ever paused")
	}
	if paus.CancelledWrites != 0 || canc.PausedWrites != 0 {
		t.Fatal("mode bookkeeping crossed")
	}
	if paus.ExecNs > canc.ExecNs {
		t.Errorf("pausing (%d ns) slower than cancellation (%d ns)", paus.ExecNs, canc.ExecNs)
	}
	if paus.AvgReadLatencyNs() >= base.AvgReadLatencyNs() {
		t.Errorf("pausing did not improve read latency: %.0f vs %.0f",
			paus.AvgReadLatencyNs(), base.AvgReadLatencyNs())
	}
	if paus.MemWrites != base.MemWrites {
		t.Errorf("completed writes differ: %d vs %d", paus.MemWrites, base.MemWrites)
	}
	// Energy bookkeeping: pausing wastes no write energy, so total write
	// energy matches the baseline closely; cancellation's is higher.
	if paus.EnergyWrite > base.EnergyWrite*1.02 {
		t.Errorf("paused write energy inflated: %.0f vs %.0f", paus.EnergyWrite, base.EnergyWrite)
	}
	if canc.EnergyWrite <= base.EnergyWrite {
		t.Errorf("cancellation shows no wasted write energy: %.0f vs %.0f",
			canc.EnergyWrite, base.EnergyWrite)
	}
}

func TestReadLatencyPercentiles(t *testing.T) {
	s := Run(ConfigFor(ThreeLC), trace.New(trace.Mcf, testOps, 1))
	p50 := s.ReadLatencyPercentileNs(50)
	p99 := s.ReadLatencyPercentileNs(99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles inconsistent: p50=%d p99=%d", p50, p99)
	}
	// The minimum demand-read latency is 205 ns; p50's bucket bound must
	// be at least that.
	if p50 < 205 {
		t.Errorf("p50 = %d below the array latency", p50)
	}
	if (Stats{}).ReadLatencyPercentileNs(99) != 0 {
		t.Error("empty stats should report zero")
	}
}

func BenchmarkSimSTREAM(b *testing.B) {
	cfg := ConfigFor(FourLCRef)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(cfg, trace.New(trace.STREAM, 50000, uint64(i)))
	}
}
