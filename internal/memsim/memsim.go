// Package memsim is the memory-system simulator behind the paper's
// Section 7 evaluation (Figure 16, Table 5): a trace-driven core with
// L1/L2 caches in front of an MLC-PCM main memory with banked timing, a
// global write-throughput limit, optional refresh, and an energy model.
//
// It substitutes for the McSim-based cycle simulator the paper used; see
// DESIGN.md for the substitution argument. The four design points
// compared in Figure 16 are constructed by ConfigFor:
//
//	4LC-REF      BCH-10 read adder, blocking per-bank refresh
//	4LC-REF-OPT  BCH-10 read adder, ideal refresh (write bandwidth only)
//	4LC-NO-REF   BCH-10 read adder, no refresh (impractical bound)
//	3LC          5 ns read adder, no refresh (the proposal)
package memsim

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Config holds Table 5's simulation parameters plus the architecture-
// dependent knobs.
type Config struct {
	// CoreGHz is the core clock (3.2 GHz), with one non-memory
	// instruction retired per cycle.
	CoreGHz float64
	// L1Bytes/L2Bytes/LineBytes/assoc describe the cache hierarchy.
	L1Bytes, L1Assoc int
	L2Bytes, L2Assoc int
	LineBytes        int
	// L1HitNs and L2HitNs are cache hit latencies.
	L1HitNs, L2HitNs int64

	// ReadLatencyNs is the PCM array read time (200 ns).
	ReadLatencyNs int64
	// ECCReadAdderNs is the architecture's decode adder: 36.25 ns for the
	// 4LC designs' BCH-10, 5 ns for the 3LC pipeline (Section 7).
	ECCReadAdderNs int64
	// WriteLatencyNs is the PCM block write time (1 µs).
	WriteLatencyNs int64
	// WriteBandwidth is the device write throughput in bytes/second
	// (40 MB/s), enforced as one 64-byte write per 1.6 µs.
	WriteBandwidth float64
	// Banks is the bank count (8).
	Banks int
	// WriteQueueDepth bounds outstanding writebacks before the core
	// stalls.
	WriteQueueDepth int

	// Refresh selects the refresh mode; RefreshIntervalNs is the full-
	// device refresh period (17 minutes); DeviceBytes sizes the refresh
	// workload (16 GB).
	Refresh           RefreshMode
	RefreshIntervalNs int64
	DeviceBytes       int64

	// WriteCancellation lets demand reads abort in-flight data writes
	// (Qureshi et al., the paper's reference [25]); the cancelled write
	// re-queues and restarts from scratch. Off in the paper's baseline
	// configurations.
	WriteCancellation bool
	// WritePausing refines cancellation: the interrupted write keeps its
	// progress and resumes with only the remaining pulse time (the
	// second half of reference [25]). Implies interruption; wins over
	// WriteCancellation when both are set.
	WritePausing bool

	// Energy model, per 64-byte operation.
	ReadEnergyNJ, WriteEnergyNJ float64
	// StaticPowerW is the background device power.
	StaticPowerW float64
}

// Table5 returns the paper's baseline parameters with the 4LC-REF
// architecture knobs.
func Table5() Config {
	return Config{
		CoreGHz: 3.2,
		L1Bytes: 16 << 10, L1Assoc: 4,
		L2Bytes: 512 << 10, L2Assoc: 8,
		LineBytes: 64,
		L1HitNs:   1, L2HitNs: 4,
		ReadLatencyNs:     200,
		ECCReadAdderNs:    36, // 36.25 in the paper; integer ns
		WriteLatencyNs:    1000,
		WriteBandwidth:    40 << 20,
		Banks:             8,
		WriteQueueDepth:   32,
		Refresh:           RefreshBlocking,
		RefreshIntervalNs: (17 * time.Minute).Nanoseconds(),
		DeviceBytes:       16 << 30,
		ReadEnergyNJ:      2,
		WriteEnergyNJ:     16,
		// PCM's idle power is nearly zero (Section 1); the residual
		// covers the controller and peripherals. Keeping it small lets
		// the RD/WR/REF dynamic breakdown of Figure 16 show through.
		StaticPowerW: 0.01,
	}
}

// Design identifies one of Figure 16's four design points.
type Design int

const (
	FourLCRef Design = iota
	FourLCRefOpt
	FourLCNoRef
	ThreeLC
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case FourLCRef:
		return "4LC-REF"
	case FourLCRefOpt:
		return "4LC-REF-OPT"
	case FourLCNoRef:
		return "4LC-NO-REF"
	case ThreeLC:
		return "3LC"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Designs returns Figure 16's four design points in order.
func Designs() []Design { return []Design{FourLCRef, FourLCRefOpt, FourLCNoRef, ThreeLC} }

// ConfigFor returns Table 5's configuration specialized to a design.
func ConfigFor(d Design) Config {
	cfg := Table5()
	switch d {
	case FourLCRef:
		cfg.Refresh = RefreshBlocking
	case FourLCRefOpt:
		cfg.Refresh = RefreshIdeal
	case FourLCNoRef:
		cfg.Refresh = RefreshOff
	case ThreeLC:
		cfg.Refresh = RefreshOff
		cfg.ECCReadAdderNs = 5
	}
	return cfg
}

// nsPerInstr returns the core's non-memory instruction latency.
func (c Config) nsPerInstr() float64 { return 1 / c.CoreGHz }

// writeTokenIntervalNs spaces writes to the configured bandwidth.
func (c Config) writeTokenIntervalNs() int64 {
	return int64(float64(c.LineBytes) / c.WriteBandwidth * 1e9)
}

// refreshTickNs returns the per-bank gap between refresh operations.
func (c Config) refreshTickNs() int64 {
	if c.Refresh == RefreshOff {
		return 0
	}
	blocksPerBank := c.DeviceBytes / int64(c.LineBytes) / int64(c.Banks)
	if blocksPerBank <= 0 {
		return 0
	}
	return c.RefreshIntervalNs / blocksPerBank
}

// Stats aggregates a simulation run.
type Stats struct {
	Design       string
	Workload     string
	Instructions int64
	MemOps       int64
	ExecNs       int64

	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	MemReads         int64
	MemWrites        int64
	RefreshOps       int64
	CancelledWrites  int64
	PausedWrites     int64

	EnergyRead    float64 // nJ
	EnergyWrite   float64
	EnergyRefresh float64
	EnergyStatic  float64

	readLatencySum int64
	writeStallNs   int64

	// latencyHist buckets demand-read latencies by power of two (bucket
	// i covers [2^i, 2^(i+1)) ns), cheap enough to keep always-on.
	latencyHist [32]int64
}

// recordReadLatency updates the aggregate and histogram.
func (s *Stats) recordReadLatency(ns int64) {
	s.readLatencySum += ns
	b := 0
	for v := ns; v > 1 && b < len(s.latencyHist)-1; v >>= 1 {
		b++
	}
	s.latencyHist[b]++
}

// ReadLatencyPercentileNs returns an upper bound on the given percentile
// of demand-read latency (bucketed at power-of-two resolution). p is in
// (0, 100].
func (s Stats) ReadLatencyPercentileNs(p float64) int64 {
	if s.MemReads == 0 || p <= 0 {
		return 0
	}
	need := int64(float64(s.MemReads) * p / 100)
	if need < 1 {
		need = 1
	}
	var acc int64
	for i, c := range s.latencyHist {
		acc += c
		if acc >= need {
			return 1 << uint(i+1)
		}
	}
	return 1 << 31
}

// TotalEnergyNJ sums all energy components.
func (s Stats) TotalEnergyNJ() float64 {
	return s.EnergyRead + s.EnergyWrite + s.EnergyRefresh + s.EnergyStatic
}

// AvgPowerW returns mean power over the run.
func (s Stats) AvgPowerW() float64 {
	if s.ExecNs == 0 {
		return 0
	}
	return s.TotalEnergyNJ() / float64(s.ExecNs)
}

// AvgReadLatencyNs returns the mean demand-read latency.
func (s Stats) AvgReadLatencyNs() float64 {
	if s.MemReads == 0 {
		return 0
	}
	return float64(s.readLatencySum) / float64(s.MemReads)
}

// IPC returns retired instructions per core cycle.
func (s Stats) IPC(cfg Config) float64 {
	if s.ExecNs == 0 {
		return 0
	}
	cycles := float64(s.ExecNs) * cfg.CoreGHz
	return float64(s.Instructions) / cycles
}

// Run simulates the workload to completion and returns its statistics.
func Run(cfg Config, gen trace.Generator) Stats {
	stats := Stats{Workload: gen.Name()}
	l1 := NewCache(cfg.L1Bytes, cfg.L1Assoc, cfg.LineBytes)
	l2 := NewCache(cfg.L2Bytes, cfg.L2Assoc, cfg.LineBytes)
	mc := newMemCtrl(cfg, &stats)

	var now int64 // ns
	var instrAcc float64

	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		stats.MemOps++
		stats.Instructions += int64(op.NonMemInstrs) + 1
		instrAcc += float64(op.NonMemInstrs) * cfg.nsPerInstr()
		if instrAcc >= 1 {
			adv := int64(instrAcc)
			now += adv
			instrAcc -= float64(adv)
		}

		hit, ev := l1.Access(op.Addr, op.IsWrite)
		now += cfg.L1HitNs
		if hit {
			continue
		}
		// L1 miss: L1 victim goes to L2.
		if ev.Valid && ev.Dirty {
			h2, ev2 := l2.Access(ev.Addr, true)
			_ = h2
			if ev2.Valid && ev2.Dirty {
				now = mc.WriteBack(ev2.Addr, now)
			}
		}
		h2, ev2 := l2.Access(op.Addr, false)
		now += cfg.L2HitNs
		if ev2.Valid && ev2.Dirty {
			now = mc.WriteBack(ev2.Addr, now)
		}
		if h2 {
			continue
		}
		// L2 miss: demand read from PCM (write-allocate covers stores).
		now = mc.Read(op.Addr, now)
	}
	end := mc.drain(now)
	if end < now {
		end = now
	}
	stats.ExecNs = end
	stats.L1Hits, stats.L1Misses = l1.Hits, l1.Misses
	stats.L2Hits, stats.L2Misses = l2.Hits, l2.Misses
	stats.EnergyStatic = cfg.StaticPowerW * float64(end)
	return stats
}
