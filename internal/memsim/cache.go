package memsim

// Set-associative write-back, write-allocate cache with LRU replacement —
// the L1 data and unified L2 caches of Table 5.

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
}

// Cache is a single cache level. Not safe for concurrent use.
type Cache struct {
	sets      [][]cacheLine // sets[i] ordered MRU first
	setCount  uint64
	assoc     int
	lineBytes uint64

	Hits, Misses int64
}

// NewCache builds a cache of the given total size.
func NewCache(sizeBytes, assoc, lineBytes int) *Cache {
	if sizeBytes <= 0 || assoc <= 0 || lineBytes <= 0 {
		panic("memsim: invalid cache geometry")
	}
	lines := sizeBytes / lineBytes
	setCount := lines / assoc
	if setCount < 1 {
		setCount = 1
	}
	c := &Cache{
		sets:      make([][]cacheLine, setCount),
		setCount:  uint64(setCount),
		assoc:     assoc,
		lineBytes: uint64(lineBytes),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, 0, assoc)
	}
	return c
}

// Eviction describes a line pushed out by an allocation.
type Eviction struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Access looks the address up, allocating on miss (write-allocate for
// both loads and stores). It returns whether it hit and any evicted line.
func (c *Cache) Access(addr uint64, isWrite bool) (hit bool, ev Eviction) {
	lineAddr := addr / c.lineBytes
	set := lineAddr % c.setCount
	tag := lineAddr / c.setCount
	s := c.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			line := s[i]
			if isWrite {
				line.dirty = true
			}
			// Move to MRU position.
			copy(s[1:i+1], s[:i])
			s[0] = line
			c.Hits++
			return true, Eviction{}
		}
	}
	c.Misses++
	newLine := cacheLine{tag: tag, valid: true, dirty: isWrite}
	if len(s) < c.assoc {
		s = append(s, cacheLine{})
		copy(s[1:], s[:len(s)-1])
		s[0] = newLine
		c.sets[set] = s
		return false, Eviction{}
	}
	victim := s[len(s)-1]
	copy(s[1:], s[:len(s)-1])
	s[0] = newLine
	evAddr := (victim.tag*c.setCount + set) * c.lineBytes
	return false, Eviction{Addr: evAddr, Dirty: victim.dirty, Valid: victim.valid}
}

// HitRate returns hits / accesses, or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
