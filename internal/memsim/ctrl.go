package memsim

// The PCM memory controller: per-bank timing, the device's global write-
// throughput limit (the paper's four-write-window of 6.4 µs, equivalent
// to 40 MB/s of 64-byte writes), a bounded writeback queue whose
// backpressure stalls the core, and per-bank refresh generation.
//
// Refresh is spread uniformly: each bank refreshes one block every
// interval/blocksPerBank (≈30.4 µs at the paper's 17-minute interval for
// a 16 GB, 8-bank device), which preserves the two quantities that drive
// Figure 16 — refresh's ~42% share of the write budget and ~3.3% bank
// busy time — at any simulation length.

// RefreshMode selects how refresh interacts with foreground traffic.
type RefreshMode int

const (
	// RefreshOff disables refresh (4LC-NO-REF, 3LC).
	RefreshOff RefreshMode = iota
	// RefreshBlocking occupies the bank and consumes write bandwidth
	// (4LC-REF).
	RefreshBlocking
	// RefreshIdeal consumes write bandwidth but never blocks a bank —
	// the paper's idealized intelligent refresh (4LC-REF-OPT).
	RefreshIdeal
)

// memCtrl tracks controller state. Times are nanoseconds.
type memCtrl struct {
	cfg Config

	bankFree  []int64 // when each bank completes its current op
	tokenNext int64   // when the next write token is available
	refDue    []int64 // per-bank next refresh time
	wq        []pendingWrite
	stats     *Stats

	// Per-bank record of an in-flight cancellable write (write
	// cancellation, Qureshi et al. HPCA'10 — the paper's reference [25]):
	// a demand read arriving while the bank services a data write may
	// cancel it; the write re-queues and retries later.
	bankWrite []pendingWrite
	bankBusyW []bool
	wStart    []int64

	// preferWrite alternates background service between refresh and the
	// write queue when both contend for the same write tokens, so that an
	// over-subscribed refresh schedule (sub-4-minute intervals) degrades
	// foreground writes to half bandwidth instead of starving them.
	preferWrite bool
}

type pendingWrite struct {
	bank  int
	ready int64
	// remain is the write time still owed; zero means a full write (set
	// at enqueue), smaller after a pause-resume.
	remain int64
}

func newMemCtrl(cfg Config, stats *Stats) *memCtrl {
	m := &memCtrl{
		cfg:       cfg,
		bankFree:  make([]int64, cfg.Banks),
		refDue:    make([]int64, cfg.Banks),
		stats:     stats,
		bankWrite: make([]pendingWrite, cfg.Banks),
		bankBusyW: make([]bool, cfg.Banks),
		wStart:    make([]int64, cfg.Banks),
	}
	tick := cfg.refreshTickNs()
	for b := range m.refDue {
		if cfg.Refresh == RefreshOff || tick <= 0 {
			m.refDue[b] = int64(1) << 62
		} else {
			// Stagger banks across the tick.
			m.refDue[b] = tick * int64(b) / int64(cfg.Banks)
		}
	}
	return m
}

// bankOf maps an address to a bank (line interleaving).
func (m *memCtrl) bankOf(addr uint64) int {
	return int(addr/uint64(m.cfg.LineBytes)) % m.cfg.Banks
}

// takeToken consumes global write bandwidth proportional to the write
// duration (a resumed partial write draws correspondingly less of the
// four-write-window budget), no earlier than t; it returns the grant time.
func (m *memCtrl) takeToken(t int64, durNs int64) int64 {
	if m.tokenNext > t {
		t = m.tokenNext
	}
	span := m.cfg.writeTokenIntervalNs()
	if durNs > 0 && durNs < m.cfg.WriteLatencyNs {
		span = span * durNs / m.cfg.WriteLatencyNs
	}
	m.tokenNext = t + span
	return t
}

// nextBackground reports the next background action (refresh or queued
// write) and a closure executing it. When both contend, the earlier start
// wins, except that service alternates under saturation: an
// over-subscribed refresh schedule would otherwise always start no later
// than a token-bound write and starve the queue forever.
func (m *memCtrl) nextBackground() (start int64, run func()) {
	const never = int64(1) << 62
	rStart, rRun := m.refreshCandidate(never)
	wStart, wRun := m.writeCandidate(never)
	switch {
	case rRun == nil && wRun == nil:
		return never, nil
	case rRun == nil:
		return wStart, wRun
	case wRun == nil:
		return rStart, rRun
	case m.preferWrite:
		m.preferWrite = false
		return wStart, wRun
	case rStart <= wStart:
		m.preferWrite = true
		return rStart, rRun
	}
	return wStart, wRun
}

// refreshCandidate returns the earliest due refresh.
func (m *memCtrl) refreshCandidate(never int64) (start int64, run func()) {
	start = never
	rb := -1
	for b, due := range m.refDue {
		if due < start {
			start, rb = due, b
		}
	}
	if rb >= 0 && start < never {
		b := rb
		due := m.refDue[b]
		run = func() {
			tick := m.cfg.refreshTickNs()
			grant := m.takeToken(due, m.cfg.WriteLatencyNs)
			if m.cfg.Refresh == RefreshBlocking {
				if m.bankFree[b] > grant {
					grant = m.bankFree[b]
				}
				m.bankFree[b] = grant + m.cfg.ReadLatencyNs + m.cfg.WriteLatencyNs
				m.bankBusyW[b] = false // the bank occupant is now refresh
			}
			// Work-conserving schedule: when the interval demands more
			// bandwidth than the device has (sub-4-minute intervals in
			// Figure 4's regime), the next refresh is scheduled relative
			// to when this one actually issued rather than piling up an
			// unbounded backlog — the device is then effectively always
			// refreshing, which is exactly the availability collapse the
			// paper describes.
			next := due + tick
			if grant > next {
				next = grant
			}
			m.refDue[b] = next
			m.stats.RefreshOps++
			m.stats.EnergyRefresh += m.cfg.ReadEnergyNJ + m.cfg.WriteEnergyNJ
		}
	}
	return start, run
}

// writeCandidate returns the head of the write queue.
func (m *memCtrl) writeCandidate(never int64) (start int64, run func()) {
	start = never
	if len(m.wq) == 0 {
		return start, nil
	}
	w := m.wq[0]
	ws := w.ready
	if m.tokenNext > ws {
		ws = m.tokenNext
	}
	if m.bankFree[w.bank] > ws {
		ws = m.bankFree[w.bank]
	}
	return ws, func() {
		m.wq = m.wq[1:]
		dur := w.remain
		if dur <= 0 {
			dur = m.cfg.WriteLatencyNs
		}
		grant := m.takeToken(ws, dur)
		if m.bankFree[w.bank] > grant {
			grant = m.bankFree[w.bank]
		}
		m.bankFree[w.bank] = grant + dur
		// Record the in-flight write so a later read can interrupt it.
		m.bankBusyW[w.bank] = true
		m.bankWrite[w.bank] = w
		m.wStart[w.bank] = grant
		m.stats.MemWrites++
		m.stats.EnergyWrite += m.cfg.WriteEnergyNJ * float64(dur) / float64(m.cfg.WriteLatencyNs)
	}
}

// catchUp executes all background work whose start time precedes t.
func (m *memCtrl) catchUp(t int64) {
	for {
		start, run := m.nextBackground()
		if run == nil || start >= t {
			return
		}
		run()
	}
}

// Read services a demand read arriving at time t and returns its
// completion time (array access plus the architecture's ECC decode).
// With write cancellation enabled, a read that finds its bank mid-write
// aborts the write (which re-queues and retries, paying a fresh token)
// and proceeds immediately — reference [25]'s mechanism.
func (m *memCtrl) Read(addr uint64, t int64) int64 {
	m.catchUp(t)
	b := m.bankOf(addr)
	interrupt := m.cfg.WriteCancellation || m.cfg.WritePausing
	if interrupt && m.bankBusyW[b] && t >= m.wStart[b] && t < m.bankFree[b] {
		remaining := m.bankFree[b] - t
		m.bankFree[b] = t
		m.bankBusyW[b] = false
		w := m.bankWrite[b]
		w.ready = t
		if m.cfg.WritePausing {
			// Keep the progress made so far; resume with the remainder.
			w.remain = remaining
			m.stats.PausedWrites++
		} else {
			w.remain = 0 // restart from scratch
			m.stats.CancelledWrites++
		}
		m.wq = append([]pendingWrite{w}, m.wq...)
		m.stats.MemWrites-- // counted again when it reissues
		m.stats.EnergyWrite -= m.cfg.WriteEnergyNJ * float64(remaining) / float64(m.cfg.WriteLatencyNs)
	}
	start := t
	if m.bankFree[b] > start {
		start = m.bankFree[b]
	}
	done := start + m.cfg.ReadLatencyNs + m.cfg.ECCReadAdderNs
	m.bankFree[b] = done
	m.stats.MemReads++
	m.stats.EnergyRead += m.cfg.ReadEnergyNJ
	m.stats.recordReadLatency(done - t)
	return done
}

// WriteBack enqueues a dirty-line writeback at time t. When the queue is
// full the caller stalls; the returned time is when the core may proceed.
func (m *memCtrl) WriteBack(addr uint64, t int64) int64 {
	m.catchUp(t)
	for len(m.wq) >= m.cfg.WriteQueueDepth {
		// Drain the earliest background action unconditionally; the core
		// waits for the slot.
		start, run := m.nextBackground()
		if run == nil {
			break
		}
		run()
		if start > t {
			m.stats.writeStallNs += start - t
			t = start
		}
	}
	m.wq = append(m.wq, pendingWrite{bank: m.bankOf(addr), ready: t})
	return t
}

// drain completes all outstanding queued writes (end of simulation) and
// returns the time the last memory operation finishes.
func (m *memCtrl) drain(t int64) int64 {
	end := t
	for len(m.wq) > 0 {
		start, run := m.nextBackground()
		if run == nil {
			break
		}
		run()
		if start > end {
			end = start
		}
	}
	for _, bf := range m.bankFree {
		if bf > end {
			end = bf
		}
	}
	return end
}
