package core

import (
	"fmt"
	"math/bits"

	"repro/internal/bch"
	"repro/internal/bitvec"
	"repro/internal/encoding"
	"repro/internal/levels"
	"repro/internal/pcmarray"
	"repro/internal/wearout"
)

// Enum is the Section 8 generalization of the 3LC architecture to any
// non-power-of-two level count: a k-level cell array, an enumerative
// group code reserving the all-highest combination as INV, group-granular
// mark-and-spare, and a BCH-1 transient-error code over a thermometer
// (unary) per-cell bit interpretation in which every single-state drift
// is a single bit error.
//
// Enum with Enumerative{Levels: 3, Cells: 2} is architecturally identical
// to ThreeLC (modulo the pair code's digit order); the interesting
// instances are five- and six-level cells, which the paper names as the
// path to higher density once write variability shrinks.
type Enum struct {
	arr     *pcmarray.Array
	code    encoding.Enumerative
	tec     *bch.Code
	ss      wearout.SpareSet
	mapping levels.Mapping

	groupsData  int
	groupCells  int
	parityCells int
	blocks      []enumBlock
}

type enumBlock struct {
	marked  map[int]bool
	written bool
}

// EnumConfig customizes the generalized architecture.
type EnumConfig struct {
	// Mapping overrides the cell-level mapping; nil selects the
	// feasibility-scaled uniform mapping for the level count.
	Mapping *levels.Mapping
	// SpareGroups sets wearout capacity in groups (default 6, matching
	// the paper's six-failure budget at one failure per group).
	SpareGroups int
	// TECStrength is the BCH correction strength. Zero selects a
	// level-dependent default: BCH-1 for three-level cells (whose drift
	// margins make errors vanishingly rare) and BCH-6 for denser cells,
	// whose squeezed margins push the per-period CER into the 1E-3 range
	// — the paper's Section 8 observation that generalized multi-level
	// cells need the full error-correction toolbox, not just the cheap
	// safety net.
	TECStrength int
	// Array configures the physical cell array.
	Array pcmarray.Options
}

// invSentinel is the SpareSet marker value: one past the largest group
// value.
func invSentinel(e encoding.Enumerative) int { return 1 << uint(e.Capacity()) }

// NewEnumerative allocates a generalized k-level device.
func NewEnumerative(nBlocks int, e encoding.Enumerative, cfg EnumConfig) *Enum {
	if nBlocks <= 0 {
		panic("core: non-positive block count")
	}
	if !e.HasINV() {
		panic("core: enumerative code must reserve an INV combination for mark-and-spare")
	}
	m := levels.Uniform(e.Levels)
	if cfg.Mapping != nil {
		m = *cfg.Mapping
	}
	if m.Levels() != e.Levels {
		panic("core: mapping level count does not match the group code")
	}
	spare := cfg.SpareGroups
	if spare == 0 {
		spare = 6
	}
	strength := cfg.TECStrength
	if strength == 0 {
		if e.Levels <= 3 {
			strength = 1
		} else {
			strength = 6
		}
	}
	cap := e.Capacity()
	groupsData := (BlockBits + cap - 1) / cap
	totalGroups := groupsData + spare
	tecBitsPerCell := e.Levels - 1
	msgBits := totalGroups * e.Cells * tecBitsPerCell
	a := &Enum{
		code:    e,
		mapping: m,
		ss:      wearout.SpareSet{DataGroups: groupsData, SpareGroups: spare, INV: invSentinel(e)},
		tec:     bch.Must(tecFieldDegree(msgBits, strength), strength, msgBits),
		blocks:  make([]enumBlock, nBlocks),

		groupsData: groupsData,
		groupCells: e.Cells,
	}
	a.parityCells = a.tec.ParityBits()
	a.arr = pcmarray.New(m, nBlocks*a.CellsPerBlock(), cfg.Array)
	for i := range a.blocks {
		a.blocks[i].marked = map[int]bool{}
	}
	return a
}

// tecFieldDegree picks the smallest GF(2^m) holding the message plus t
// check-bit groups.
func tecFieldDegree(msgBits, t int) int {
	for m := 5; m <= 14; m++ {
		if msgBits+t*m <= (1<<m)-1 {
			return m
		}
	}
	panic("core: TEC message too long")
}

// Name implements Arch.
func (a *Enum) Name() string {
	return fmt.Sprintf("enum-%dLC (%d-on-%d + BCH-%d + group-spare)",
		a.code.Levels, a.code.Capacity(), a.code.Cells, a.tec.T)
}

// Blocks implements Arch.
func (a *Enum) Blocks() int { return len(a.blocks) }

// groupRegionCells returns the cells holding data+spare groups.
func (a *Enum) groupRegionCells() int { return a.ss.Total() * a.groupCells }

// CellsPerBlock implements Arch.
func (a *Enum) CellsPerBlock() int { return a.groupRegionCells() + a.parityCells }

// Density implements Arch.
func (a *Enum) Density() float64 {
	return float64(BlockBits) / float64(a.CellsPerBlock())
}

// Array implements Arch.
func (a *Enum) Array() *pcmarray.Array { return a.arr }

func (a *Enum) base(block int) int { return block * a.CellsPerBlock() }

// thermBits returns the thermometer pattern of a state: `state` ones in
// the low bits of a (levels-1)-wide field. Adjacent states differ in
// exactly one bit.
func (a *Enum) thermBits(state int) uint64 {
	return (1 << uint(state)) - 1
}

// thermState inverts thermBits; malformed (non-prefix) patterns decode to
// their population count with ok=false.
func (a *Enum) thermState(pattern uint64) (state int, ok bool) {
	n := bits.OnesCount64(pattern)
	return n, pattern == (1<<uint(n))-1
}

// groupValues converts 512 data bits into group values.
func (a *Enum) groupValues(data bitvec.Vector) []int {
	cap := a.code.Capacity()
	vals := make([]int, a.groupsData)
	for g := range vals {
		var v uint64
		for b := 0; b < cap; b++ {
			i := g*cap + b
			if i < data.Len() && data.Get(i) != 0 {
				v |= 1 << uint(b)
			}
		}
		vals[g] = int(v)
	}
	return vals
}

// statesForGroup expands a laid-out group value into cell states.
func (a *Enum) statesForGroup(v int) []int {
	if v == a.ss.INV {
		top := make([]int, a.groupCells)
		for i := range top {
			top[i] = a.code.Levels - 1
		}
		return top
	}
	return a.code.EncodeGroup(uint64(v))
}

// Write implements Arch.
func (a *Enum) Write(block int, data []byte) error {
	if err := checkBlockArgs(block, len(a.blocks), data, true); err != nil {
		return err
	}
	blk := &a.blocks[block]
	vals := a.groupValues(bitvec.FromBytes(data, BlockBits))

	for attempt := 0; attempt <= a.ss.SpareGroups+1; attempt++ {
		phys, err := a.ss.Layout(vals, blk.marked)
		if err != nil {
			return ErrWornOut
		}
		newFailure := false
		for g, v := range phys {
			for c, state := range a.statesForGroup(v) {
				cellIdx := a.base(block) + g*a.groupCells + c
				if a.arr.Write(cellIdx, state) {
					continue
				}
				if !blk.marked[g] {
					blk.marked[g] = true
					newFailure = true
				}
				a.markGroupINV(block, g)
			}
		}
		if newFailure {
			if len(blk.marked) > a.ss.SpareGroups {
				return ErrWornOut
			}
			continue
		}
		// TEC parity over intended states (marked groups count as
		// all-top even when a stuck-set cell cannot reach the top; the
		// single-bit code hides one such cell).
		msg := a.tecMessage(phys)
		parity := a.tec.Encode(msg)
		a.writeParity(block, parity)
		blk.written = true
		return nil
	}
	return ErrWornOut
}

// tecMessage builds the thermometer message for laid-out group values.
func (a *Enum) tecMessage(phys []int) bitvec.Vector {
	width := a.code.Levels - 1
	msg := bitvec.New(len(phys) * a.groupCells * width)
	for g, v := range phys {
		for c, state := range a.statesForGroup(v) {
			base := (g*a.groupCells + c) * width
			msg.SetUint(base, width, a.thermBits(state))
		}
	}
	return msg
}

// markGroupINV drives all cells of a group to the top state, parking
// unrevivable stuck-set cells one state below (a single thermometer bit
// from the intended pattern).
func (a *Enum) markGroupINV(block, group int) {
	top := a.code.Levels - 1
	for c := 0; c < a.groupCells; c++ {
		cellIdx := a.base(block) + group*a.groupCells + c
		if a.arr.Write(cellIdx, top) {
			continue
		}
		if a.arr.Mode(cellIdx) == wearout.StuckSet {
			if a.arr.Revive(cellIdx) {
				continue
			}
			a.arr.Write(cellIdx, top-1)
		}
	}
}

// writeParity stores check bits in SLC mode (states 0 and top).
func (a *Enum) writeParity(block int, parity bitvec.Vector) {
	top := a.code.Levels - 1
	for i := 0; i < a.parityCells; i++ {
		state := 0
		if parity.Get(i) != 0 {
			state = top
		}
		cellIdx := a.base(block) + a.groupRegionCells() + i
		if !a.arr.Write(cellIdx, state) && state == top && a.arr.Mode(cellIdx) == wearout.StuckSet {
			a.arr.Revive(cellIdx)
		}
	}
}

// Read implements Arch, in Figure 9's stage order.
func (a *Enum) Read(block int) ([]byte, error) {
	if err := checkBlockArgs(block, len(a.blocks), nil, false); err != nil {
		return nil, err
	}
	if !a.blocks[block].written {
		return nil, fmt.Errorf("core: block %d never written", block)
	}
	width := a.code.Levels - 1
	top := a.code.Levels - 1
	nCells := a.groupRegionCells()

	// Stage 1: array read into the thermometer message.
	msg := bitvec.New(nCells * width)
	for i := 0; i < nCells; i++ {
		msg.SetUint(i*width, width, a.thermBits(a.arr.Sense(a.base(block)+i)))
	}
	parity := bitvec.New(a.tec.ParityBits())
	for i := 0; i < a.parityCells; i++ {
		if a.arr.Sense(a.base(block)+a.groupRegionCells()+i) == top {
			parity.Set(i, 1)
		}
	}

	// Stage 2: transient error correction.
	res := a.tec.Decode(msg, parity)
	uncorrectable := !res.OK

	// Back to states, then group values.
	states := make([]int, nCells)
	for i := range states {
		s, ok := a.thermState(msg.Uint(i*width, width))
		if !ok {
			uncorrectable = true
		}
		states[i] = s
	}
	groups := make([]int, a.ss.Total())
	for g := range groups {
		val, inv, ok := a.code.DecodeGroup(states[g*a.groupCells : (g+1)*a.groupCells])
		switch {
		case inv:
			groups[g] = a.ss.INV
		case !ok:
			uncorrectable = true
			groups[g] = int(val)
		default:
			groups[g] = int(val)
		}
	}

	// Stage 3: hard error correction (group spare).
	data, _, err := a.ss.Correct(groups)
	if err != nil {
		return nil, ErrWornOut
	}

	// Stage 4: symbol decode.
	out := bitvec.New(BlockBits)
	cap := a.code.Capacity()
	for g, v := range data {
		for b := 0; b < cap; b++ {
			i := g*cap + b
			if i < BlockBits {
				out.Set(i, uint(v>>uint(b))&1)
			}
		}
	}
	if uncorrectable {
		return out.Bytes(), ErrUncorrectable
	}
	return out.Bytes(), nil
}

// Scrub implements Arch.
func (a *Enum) Scrub(block int) error {
	data, err := a.Read(block)
	if err != nil && err != ErrUncorrectable {
		return err
	}
	if werr := a.Write(block, data); werr != nil {
		return werr
	}
	return err
}

// MarkedGroups returns a block's consumed wearout capacity.
func (a *Enum) MarkedGroups(block int) int { return len(a.blocks[block].marked) }

var _ Arch = (*Enum)(nil)
