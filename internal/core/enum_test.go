package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/encoding"
	"repro/internal/wearout"
)

func enumConfigs() []encoding.Enumerative {
	return []encoding.Enumerative{
		{Levels: 3, Cells: 2}, // the paper's 3-ON-2 through the generic path
		{Levels: 5, Cells: 3}, // 6 bits on 3 cells
		{Levels: 6, Cells: 5}, // 12 bits on 5 cells
	}
}

func TestEnumCleanRoundTrip(t *testing.T) {
	for _, e := range enumConfigs() {
		dev := NewEnumerative(8, e, EnumConfig{Array: noWear(1)})
		for b := 0; b < dev.Blocks(); b++ {
			want := pattern(byte(3*b + 1))
			if err := dev.Write(b, want); err != nil {
				t.Fatalf("%s: write: %v", dev.Name(), err)
			}
			got, err := dev.Read(b)
			if err != nil {
				t.Fatalf("%s: read: %v", dev.Name(), err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: block %d corrupted", dev.Name(), b)
			}
		}
	}
}

func TestEnumGeometryAndDensity(t *testing.T) {
	// 3-ON-2 via the generic path must land on the paper's geometry.
	three := NewEnumerative(1, encoding.Enumerative{Levels: 3, Cells: 2}, EnumConfig{Array: noWear(2)})
	if three.CellsPerBlock() < 360 || three.CellsPerBlock() > 368 {
		t.Errorf("generic 3LC cells/block = %d, want ~364", three.CellsPerBlock())
	}
	// Higher level counts buy density.
	five := NewEnumerative(1, encoding.Enumerative{Levels: 5, Cells: 3}, EnumConfig{Array: noWear(2)})
	six := NewEnumerative(1, encoding.Enumerative{Levels: 6, Cells: 5}, EnumConfig{Array: noWear(2)})
	if !(six.Density() > five.Density() && five.Density() > three.Density()) {
		t.Errorf("density ordering wrong: 3LC %.3f, 5LC %.3f, 6LC %.3f",
			three.Density(), five.Density(), six.Density())
	}
	// 5LC pays for its BCH-6 safety net: density ~1.5, only slightly
	// above 4LCo once overheads count — the Section 8 tradeoff made
	// quantitative.
	if five.Density() < 1.45 {
		t.Errorf("5LC density %.3f; expected ~1.5", five.Density())
	}
}

func TestEnumToleratesGroupFailures(t *testing.T) {
	for _, e := range enumConfigs() {
		dev := NewEnumerative(1, e, EnumConfig{Array: noWear(3)})
		want := make([]byte, BlockBytes) // all-zero: every cell targets S1
		// Six stuck-reset cells in six distinct groups.
		for k := 0; k < 6; k++ {
			dev.Array().InjectFailure(k*e.Cells*7, wearout.StuckReset)
		}
		if err := dev.Write(0, want); err != nil {
			t.Fatalf("%s: write with 6 failures: %v", dev.Name(), err)
		}
		if got := dev.MarkedGroups(0); got != 6 {
			t.Fatalf("%s: marked groups = %d", dev.Name(), got)
		}
		got, err := dev.Read(0)
		if err != nil {
			t.Fatalf("%s: read: %v", dev.Name(), err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: data corrupted", dev.Name())
		}
	}
}

func TestEnumSeventhFailureExhausts(t *testing.T) {
	e := encoding.Enumerative{Levels: 5, Cells: 3}
	dev := NewEnumerative(1, e, EnumConfig{Array: noWear(4)})
	for k := 0; k < 7; k++ {
		dev.Array().InjectFailure(k*e.Cells*5, wearout.StuckReset)
	}
	if err := dev.Write(0, make([]byte, BlockBytes)); !errors.Is(err, ErrWornOut) {
		t.Fatalf("err = %v, want ErrWornOut", err)
	}
}

func TestEnumRetentionOrdering(t *testing.T) {
	// Higher density costs retention: after a day unrefreshed, the
	// six-level device must show at least as many failures as the
	// three-level one (which should be clean).
	day := 86400.0
	fails := func(e encoding.Enumerative) int {
		dev := NewEnumerative(16, e, EnumConfig{Array: noWear(5)})
		for b := 0; b < dev.Blocks(); b++ {
			if err := dev.Write(b, pattern(byte(b))); err != nil {
				t.Fatal(err)
			}
		}
		dev.Array().Advance(day)
		bad := 0
		for b := 0; b < dev.Blocks(); b++ {
			got, err := dev.Read(b)
			if err != nil || !bytes.Equal(got, pattern(byte(b))) {
				bad++
			}
		}
		return bad
	}
	f3 := fails(encoding.Enumerative{Levels: 3, Cells: 2})
	f6 := fails(encoding.Enumerative{Levels: 6, Cells: 5})
	if f3 != 0 {
		t.Errorf("generic 3LC lost %d blocks in a day", f3)
	}
	if f6 < f3 {
		t.Errorf("6LC (%d) outlasted 3LC (%d)", f6, f3)
	}
}

func TestEnumScrubWorks(t *testing.T) {
	e := encoding.Enumerative{Levels: 5, Cells: 3}
	dev := NewEnumerative(2, e, EnumConfig{Array: noWear(6)})
	want := pattern(0x5A)
	if err := dev.Write(0, want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		dev.Array().Advance(60) // 5LC needs frequent scrubbing
		if err := dev.Scrub(0); err != nil {
			t.Fatalf("scrub %d: %v", i, err)
		}
	}
	got, err := dev.Read(0)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("data lost under scrubbing: %v", err)
	}
}

func TestEnumRejectsCodeWithoutINV(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	// 4 levels / 1 cell: 2 bits exactly fill the radix space, no INV.
	NewEnumerative(1, encoding.Enumerative{Levels: 4, Cells: 1}, EnumConfig{Array: noWear(7)})
}

func TestSpareSetMirrorsMarkAndSpare(t *testing.T) {
	// The generic SpareSet with INV=8 must agree with the pair-based
	// MarkAndSpare on identical inputs.
	mas := wearout.MarkAndSpare{DataPairs: 8, SparePairs: 2}
	ss := wearout.SpareSet{DataGroups: 8, SpareGroups: 2, INV: encoding.INV}
	data := []int{7, 6, 5, 4, 3, 2, 1, 0}
	marked := map[int]bool{2: true, 7: true}
	a, errA := mas.Layout(data, marked)
	b, errB := ss.Layout(data, marked)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("layout errors differ: %v vs %v", errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layouts differ at %d", i)
		}
	}
	ca, ua, errA := mas.Correct(a)
	cb, ub, errB := ss.Correct(b)
	if errA != nil || errB != nil || ua != ub {
		t.Fatalf("correct mismatch: %v %v %d %d", errA, errB, ua, ub)
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("corrected data differs at %d", i)
		}
	}
}
