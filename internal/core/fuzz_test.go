package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/wearout"
)

// The randomized integrity harness: drive each architecture with a
// random mix of writes, aging, scrubs, and fault injection — all within
// the design's documented operating envelope — and verify that every
// read returns exactly the mirrored data or a reported error. Within the
// envelope (bounded drift between scrubs, at most six wearout failures
// per block) there must be NO error reports and NO silent corruption.

type fuzzEnvelope struct {
	name string
	mk   func(blocks int, seed uint64) Arch
	// maxAgeStep bounds one aging step in seconds (drift between scrubs
	// stays within the ECC budget).
	maxAgeStep float64
	// faultBudget is the number of stuck cells injectable per block.
	faultBudget int
}

func envelopes() []fuzzEnvelope {
	return []fuzzEnvelope{
		{
			name: "3LC",
			mk: func(blocks int, seed uint64) Arch {
				return NewThreeLC(blocks, ThreeLCConfig{Array: noWear(seed)})
			},
			maxAgeStep:  30 * 86400, // a month per step: far inside 3LC margins
			faultBudget: 4,
		},
		{
			name: "4LCo",
			mk: func(blocks int, seed uint64) Arch {
				return NewFourLC(blocks, FourLCConfig{Array: noWear(seed)})
			},
			maxAgeStep:  60, // one minute per step at a 17-minute-class budget
			faultBudget: 4,
		},
		{
			name: "perm",
			mk: func(blocks int, seed uint64) Arch {
				return NewPermutation(blocks, noWear(seed))
			},
			maxAgeStep:  300,
			faultBudget: 4,
		},
		{
			name: "enum5",
			mk: func(blocks int, seed uint64) Arch {
				return NewEnumerative(blocks, encoding.Enumerative{Levels: 5, Cells: 3},
					EnumConfig{Array: noWear(seed)})
			},
			maxAgeStep:  10,
			faultBudget: 3,
		},
	}
}

func TestNoSilentCorruptionUnderRandomOperation(t *testing.T) {
	const blocks = 6
	const ops = 400
	for _, env := range envelopes() {
		env := env
		t.Run(env.name, func(t *testing.T) {
			r := rng.New(0xF00D ^ uint64(len(env.name)))
			dev := env.mk(blocks, 1234)
			mirror := make([][]byte, blocks)
			faultsUsed := make([]int, blocks)
			cellsPerBlock := dev.Array().Len() / blocks

			timeSinceScrub := 0.0
			scrubAll := func() {
				for b := 0; b < blocks; b++ {
					if mirror[b] == nil {
						continue
					}
					if err := dev.Scrub(b); err != nil {
						t.Fatalf("op scrub block %d: %v", b, err)
					}
				}
				timeSinceScrub = 0
			}

			for op := 0; op < ops; op++ {
				switch r.Intn(10) {
				case 0, 1, 2, 3: // write
					b := r.Intn(blocks)
					data := make([]byte, BlockBytes)
					for i := range data {
						data[i] = byte(r.Uint64())
					}
					if err := dev.Write(b, data); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					mirror[b] = data
				case 4, 5, 6: // read + verify
					b := r.Intn(blocks)
					if mirror[b] == nil {
						continue
					}
					got, err := dev.Read(b)
					if err != nil {
						t.Fatalf("op %d read block %d errored inside envelope: %v", op, b, err)
					}
					if !bytes.Equal(got, mirror[b]) {
						t.Fatalf("op %d SILENT CORRUPTION in block %d", op, b)
					}
				case 7: // age, scrubbing first if the budget would overflow
					step := r.Float64() * env.maxAgeStep
					if timeSinceScrub+step > env.maxAgeStep {
						scrubAll()
					}
					dev.Array().Advance(step)
					timeSinceScrub += step
				case 8: // scrub one block
					b := r.Intn(blocks)
					if mirror[b] == nil {
						continue
					}
					if err := dev.Scrub(b); err != nil {
						t.Fatalf("op %d scrub: %v", op, err)
					}
				case 9: // inject a stuck fault within budget
					b := r.Intn(blocks)
					if faultsUsed[b] >= env.faultBudget {
						continue
					}
					cell := b*cellsPerBlock + r.Intn(cellsPerBlock)
					mode := wearout.StuckReset
					if r.Intn(2) == 0 {
						mode = wearout.StuckSet
					}
					dev.Array().InjectFailure(cell, mode)
					faultsUsed[b]++
					// A freshly stuck cell can hold a stale value mid-
					// retention (a multi-bit event the ECC does not
					// promise to fix); rewrite the block so the fault is
					// discovered by write-and-verify, as in deployment.
					if mirror[b] != nil {
						if err := dev.Write(b, mirror[b]); err != nil {
							t.Fatalf("op %d fault-discovery write: %v", op, err)
						}
					}
				}
			}
			// Final sweep.
			for b := 0; b < blocks; b++ {
				if mirror[b] == nil {
					continue
				}
				got, err := dev.Read(b)
				if err != nil {
					t.Fatalf("final read block %d: %v", b, err)
				}
				if !bytes.Equal(got, mirror[b]) {
					t.Fatalf("final SILENT CORRUPTION in block %d", b)
				}
			}
		})
	}
}

// TestBeyondEnvelopeIsReportedNotSilent drives each design far past its
// retention envelope and checks that data loss is predominantly
// *reported* (ErrUncorrectable) rather than silent. Bounded-distance
// decoding makes occasional miscorrection unavoidable, so the assertion
// is statistical: at least half of all corrupted blocks must be flagged.
func TestBeyondEnvelopeIsReportedNotSilent(t *testing.T) {
	const blocks = 24
	cases := []struct {
		name string
		mk   func() Arch
		age  float64
	}{
		{"4LCo-1year", func() Arch { return NewFourLC(blocks, FourLCConfig{Array: noWear(9)}) }, 365 * 86400},
		{"perm-30years", func() Arch { return NewPermutation(blocks, noWear(9)) }, 30 * 365 * 86400},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			dev := c.mk()
			want := make([][]byte, blocks)
			r := rng.New(77)
			for b := 0; b < blocks; b++ {
				want[b] = make([]byte, BlockBytes)
				for i := range want[b] {
					want[b][i] = byte(r.Uint64())
				}
				if err := dev.Write(b, want[b]); err != nil {
					t.Fatal(err)
				}
			}
			dev.Array().Advance(c.age)
			var reported, silent int
			for b := 0; b < blocks; b++ {
				got, err := dev.Read(b)
				wrong := !bytes.Equal(got, want[b])
				switch {
				case errors.Is(err, ErrUncorrectable):
					reported++
				case err == nil && wrong:
					silent++
				}
			}
			total := reported + silent
			if total == 0 {
				t.Skipf("%s: no blocks decayed; envelope wider than expected", c.name)
			}
			if silent > reported {
				t.Fatalf("%s: %d silent vs %d reported corruptions", c.name, silent, reported)
			}
			t.Log(fmt.Sprintf("%s: %d reported, %d silent of %d blocks", c.name, reported, silent, blocks))
		})
	}
}
