package core

import (
	"fmt"

	"repro/internal/bch"
	"repro/internal/bitvec"
	"repro/internal/encoding"
	"repro/internal/hsiao"
	"repro/internal/levels"
	"repro/internal/pcmarray"
	"repro/internal/wearout"
)

// ThreeLC block geometry (Sections 6.2–6.5): 171 data pairs + 6 spare
// pairs = 354 ternary cells, plus SLC-mode cells holding the
// transient-error check bits (10 for BCH-1; 11 for the Hsiao SEC-DED
// alternative the paper names as equivalent).
const threeLCPairCells = 354

// tecCodec abstracts the transient-error code: the paper's BCH-1 or the
// Hsiao SEC-DED equivalent (Section 6.3 treats them interchangeably;
// Hsiao buys guaranteed double-error detection for one extra check cell).
type tecCodec interface {
	ParityBits() int
	Encode(msg bitvec.Vector) bitvec.Vector
	// DecodeOK corrects in place and reports whether the word is clean
	// or was fully corrected.
	DecodeOK(msg, parity bitvec.Vector) bool
}

type bchTEC struct{ c *bch.Code }

func (b bchTEC) ParityBits() int                      { return b.c.ParityBits() }
func (b bchTEC) Encode(m bitvec.Vector) bitvec.Vector { return b.c.Encode(m) }
func (b bchTEC) DecodeOK(m, p bitvec.Vector) bool     { return b.c.Decode(m, p).OK }

type hsiaoTEC struct{ c *hsiao.Code }

func (h hsiaoTEC) ParityBits() int                      { return h.c.CheckBits }
func (h hsiaoTEC) Encode(m bitvec.Vector) bitvec.Vector { return h.c.Encode(m) }
func (h hsiaoTEC) DecodeOK(m, p bitvec.Vector) bool     { return h.c.Decode(m, p).OK }

// ThreeLC is the paper's proposed architecture. See the package comment.
type ThreeLC struct {
	arr         *pcmarray.Array
	tec         tecCodec
	mas         wearout.MarkAndSpare
	parityCells int
	blocks      []threeLCBlock
}

type threeLCBlock struct {
	marked  map[int]bool // INV-marked pair positions
	written bool
}

// ThreeLCConfig customizes the architecture.
type ThreeLCConfig struct {
	// Mapping overrides the cell-level mapping; nil selects the paper's
	// optimal 3LCo mapping.
	Mapping *levels.Mapping
	// UseHsiao swaps the BCH-1 transient-error code for the Hsiao
	// SEC-DED equivalent: one more check cell, but double errors are
	// guaranteed to be detected rather than (usually) miscorrected.
	UseHsiao bool
	// Array configures the physical cell array.
	Array pcmarray.Options
}

// NewThreeLC allocates a 3LC device with the given number of 64-byte
// blocks.
func NewThreeLC(nBlocks int, cfg ThreeLCConfig) *ThreeLC {
	if nBlocks <= 0 {
		panic("core: non-positive block count")
	}
	m := levels.ThreeLCOpt()
	if cfg.Mapping != nil {
		m = *cfg.Mapping
	}
	if m.Levels() != 3 {
		panic("core: ThreeLC requires a three-level mapping")
	}
	var tec tecCodec = bchTEC{bch.Must(10, 1, 2*threeLCPairCells)} // BCH-1 over 708 bits
	if cfg.UseHsiao {
		tec = hsiaoTEC{hsiao.Must(2 * threeLCPairCells)}
	}
	a := &ThreeLC{
		tec:         tec,
		mas:         wearout.PaperDesign(),
		parityCells: tec.ParityBits(),
		blocks:      make([]threeLCBlock, nBlocks),
	}
	a.arr = pcmarray.New(m, nBlocks*a.CellsPerBlock(), cfg.Array)
	for i := range a.blocks {
		a.blocks[i].marked = map[int]bool{}
	}
	return a
}

// Name implements Arch.
func (t *ThreeLC) Name() string {
	if _, ok := t.tec.(hsiaoTEC); ok {
		return "3LC (3-ON-2 + Hsiao SEC-DED + mark-and-spare)"
	}
	return "3LC (3-ON-2 + BCH-1 + mark-and-spare)"
}

// Blocks implements Arch.
func (t *ThreeLC) Blocks() int { return len(t.blocks) }

// CellsPerBlock implements Arch.
func (t *ThreeLC) CellsPerBlock() int { return threeLCPairCells + t.parityCells }

// Density implements Arch.
func (t *ThreeLC) Density() float64 { return ThreeLCDensity(t.mas.SparePairs) }

// Array implements Arch.
func (t *ThreeLC) Array() *pcmarray.Array { return t.arr }

// base returns the first cell index of a block.
func (t *ThreeLC) base(block int) int { return block * t.CellsPerBlock() }

// Write implements Arch: 3-ON-2 encode, mark-and-spare layout, pair
// writes with wearout handling, then BCH-1 parity over the intended
// 708-bit TEC message, stored in SLC mode.
func (t *ThreeLC) Write(block int, data []byte) error {
	if err := checkBlockArgs(block, len(t.blocks), data, true); err != nil {
		return err
	}
	blk := &t.blocks[block]
	bits := bitvec.FromBytes(data, BlockBits)
	dataPairs := pairsFromCells(encoding.EncodeThreeOnTwo(bits))

	// Wearout can surface during this write; retry the layout after each
	// new marking until it sticks or capacity is exhausted.
	for attempt := 0; attempt <= t.mas.SparePairs+1; attempt++ {
		phys, err := t.mas.Layout(dataPairs, blk.marked)
		if err != nil {
			return ErrWornOut
		}
		newFailure := false
		for p, v := range phys {
			c1, c2 := pairStates(v)
			for k, state := range []int{c1, c2} {
				cellIdx := t.base(block) + 2*p + k
				if t.arr.Write(cellIdx, state) {
					continue
				}
				// Verify failure: a wearout event. Mark the whole pair
				// INV (Section 6.4) and retry the layout.
				if !blk.marked[p] {
					blk.marked[p] = true
					newFailure = true
				}
				t.markPairINV(block, p)
			}
		}
		if newFailure {
			if len(blk.marked) > t.mas.SparePairs {
				return ErrWornOut
			}
			continue
		}
		// All pairs written. Build the intended TEC message — marked
		// pairs count as [S4, S4] even when a stuck-set cell physically
		// cannot reach S4; BCH-1 hides such a cell at read time.
		intended := make([]int, threeLCPairCells)
		for p, v := range phys {
			c1, c2 := pairStates(v)
			intended[2*p], intended[2*p+1] = c1, c2
		}
		msg := encoding.TECMessage3(intended)
		parity := t.tec.Encode(msg)
		t.writeParity(block, parity)
		blk.written = true
		return nil
	}
	return ErrWornOut
}

// markPairINV drives both cells of a pair to S4, reviving stuck-set
// cells where possible.
func (t *ThreeLC) markPairINV(block, pair int) {
	for k := 0; k < 2; k++ {
		cellIdx := t.base(block) + 2*pair + k
		if t.arr.Write(cellIdx, 2) {
			continue
		}
		if t.arr.Mode(cellIdx) == wearout.StuckSet {
			if t.arr.Revive(cellIdx) {
				continue
			}
			// Unrevivable: park the cell at S2, whose TEC pattern (01)
			// is one bit from the intended S4 (11), so the single-bit
			// TEC hides it at read time (Section 6.4) — and upward
			// drift only moves it toward S4.
			t.arr.Write(cellIdx, 1)
		}
	}
}

// writeParity stores the 10 BCH-1 check bits in SLC mode: bit 0 as S1,
// bit 1 as S4 — the two extreme states, whose drift error rate is
// negligible (Section 6.3: check bits are stored "1 bit per cell to
// prevent drift errors on the check bits").
func (t *ThreeLC) writeParity(block int, parity bitvec.Vector) {
	for i := 0; i < t.parityCells; i++ {
		state := 0
		if parity.Get(i) != 0 {
			state = 2
		}
		cellIdx := t.base(block) + threeLCPairCells + i
		if t.arr.Write(cellIdx, state) {
			continue
		}
		// A worn parity cell: try revival toward S4 (correct when the
		// bit is 1); otherwise the BCH-1 budget absorbs it.
		if state == 2 && t.arr.Mode(cellIdx) == wearout.StuckSet {
			t.arr.Revive(cellIdx)
		}
	}
}

// Read implements Arch, in Figure 9's stage order.
func (t *ThreeLC) Read(block int) ([]byte, error) {
	if err := checkBlockArgs(block, len(t.blocks), nil, false); err != nil {
		return nil, err
	}
	if !t.blocks[block].written {
		return nil, fmt.Errorf("core: block %d never written", block)
	}
	// Stage 1: PCM array read.
	states := make([]int, threeLCPairCells)
	for i := range states {
		states[i] = t.arr.Sense(t.base(block) + i)
	}
	parity := bitvec.New(t.tec.ParityBits())
	for i := 0; i < t.parityCells; i++ {
		if t.arr.Sense(t.base(block)+threeLCPairCells+i) == 2 {
			parity.Set(i, 1)
		}
	}

	// Stage 2: transient error correction (BCH-1 over the 2-bit-per-cell
	// interpretation). Correction must run before mark-and-spare so a
	// drift error cannot masquerade as (or hide) an INV mark.
	msg := encoding.TECMessage3(states)
	uncorrectable := !t.tec.DecodeOK(msg, parity)
	cells, bad := encoding.CellsFromTECMessage3(msg)
	if bad > 0 {
		uncorrectable = true
	}

	// Stage 3: hard error correction (mark-and-spare).
	pairs := make([]int, t.mas.TotalPairs())
	for p := range pairs {
		pairs[p] = encoding.PairIndex(cells[2*p], cells[2*p+1])
	}
	dataPairs, _, err := t.mas.Correct(pairs)
	if err != nil {
		return nil, ErrWornOut
	}

	// Stage 4: symbol decode (3-ON-2 back to bits).
	out := bitsFromPairs(dataPairs, BlockBits)
	if uncorrectable {
		return out.Bytes(), ErrUncorrectable
	}
	return out.Bytes(), nil
}

// Scrub implements Arch: read, correct, re-write (restoring nominal
// resistance), propagating uncorrectable errors.
func (t *ThreeLC) Scrub(block int) error {
	data, err := t.Read(block)
	if err != nil && err != ErrUncorrectable {
		return err
	}
	if werr := t.Write(block, data); werr != nil {
		return werr
	}
	return err
}

// MarkedPairs returns the number of INV-marked pairs in a block (worn
// capacity consumed).
func (t *ThreeLC) MarkedPairs(block int) int { return len(t.blocks[block].marked) }

// pairsFromCells folds a cell-state slice into pair values 0..7.
func pairsFromCells(cells []int) []int {
	pairs := make([]int, len(cells)/2)
	for p := range pairs {
		pairs[p] = encoding.PairIndex(cells[2*p], cells[2*p+1])
	}
	return pairs
}

// pairStates unfolds a pair value 0..8 into two ternary states.
func pairStates(v int) (int, int) { return v / 3, v % 3 }

// bitsFromPairs reassembles data bits from non-INV pair values.
func bitsFromPairs(pairs []int, nBits int) bitvec.Vector {
	out := bitvec.New(nBits)
	for p, v := range pairs {
		for b := 0; b < 3; b++ {
			i := 3*p + b
			if i < nBits {
				out.Set(i, uint(v>>b)&1)
			}
		}
	}
	return out
}
