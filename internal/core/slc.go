package core

import (
	"fmt"

	"repro/internal/levels"
	"repro/internal/pcmarray"
	"repro/internal/wearout"
)

// SLC block geometry: 512 one-bit cells plus the original SLC ECP-6
// table (Schechter et al.: a 9-bit pointer and a replacement bit per
// entry, 61 bits ≈ 61 SLC cells with the full flag).
const (
	slcDataCells = BlockBits
	slcECPCells  = 61
)

// SLC is the single-level-cell reference design the paper measures
// everything against: two extreme resistance states only, so resistance
// drift never crosses a threshold (Section 2.4: S1 essentially never
// becomes S2, and the top state cannot err) — no transient-error code
// and no refresh, at a density of one bit per cell. Endurance is the
// one axis where SLC wins outright (~1E8 cycles vs MLC's ~1E5).
type SLC struct {
	arr    *pcmarray.Array
	ecp    wearout.ECP
	blocks []slcBlock
}

type slcBlock struct {
	entries []wearout.Entry
	written bool
}

// NewSLC allocates an SLC device. Options' EnduranceMean applies as
// given; pass the SLC-appropriate 1E8 for endurance studies.
func NewSLC(nBlocks int, opt pcmarray.Options) *SLC {
	if nBlocks <= 0 {
		panic("core: non-positive block count")
	}
	return &SLC{
		arr: pcmarray.New(levels.Uniform(2), nBlocks*slcDataCells, opt),
		ecp: wearout.ECP{DataCells: slcDataCells, Entries: 6,
			CellsPerEntry: 10, FlagCells: 1},
		blocks: make([]slcBlock, nBlocks),
	}
}

// Name implements Arch.
func (s *SLC) Name() string { return "SLC (1 bit/cell + ECP-6)" }

// Blocks implements Arch.
func (s *SLC) Blocks() int { return len(s.blocks) }

// CellsPerBlock implements Arch.
func (s *SLC) CellsPerBlock() int { return slcDataCells + s.ecp.CellOverhead() }

// Density implements Arch: 512 bits over 573 cells.
func (s *SLC) Density() float64 {
	return float64(BlockBits) / float64(s.CellsPerBlock())
}

// Array implements Arch.
func (s *SLC) Array() *pcmarray.Array { return s.arr }

func (s *SLC) base(block int) int { return block * slcDataCells }

// Write implements Arch: one bit per cell, verify failures patched by
// ECP entries.
func (s *SLC) Write(block int, data []byte) error {
	if err := checkBlockArgs(block, len(s.blocks), data, true); err != nil {
		return err
	}
	blk := &s.blocks[block]
	failures := map[int]int{}
	for i := 0; i < BlockBits; i++ {
		state := int(data[i/8]>>(i%8)) & 1 // bit 1 = the top (amorphous) state
		if s.arr.Write(s.base(block)+i, state) {
			continue
		}
		failures[i] = state
	}
	entries, err := s.ecp.Allocate(failures)
	if err != nil {
		return ErrWornOut
	}
	blk.entries = entries
	blk.written = true
	return nil
}

// Read implements Arch.
func (s *SLC) Read(block int) ([]byte, error) {
	if err := checkBlockArgs(block, len(s.blocks), nil, false); err != nil {
		return nil, err
	}
	blk := &s.blocks[block]
	if !blk.written {
		return nil, fmt.Errorf("core: block %d never written", block)
	}
	states := make([]int, slcDataCells)
	for i := range states {
		states[i] = s.arr.Sense(s.base(block) + i)
	}
	if _, err := s.ecp.Apply(states, blk.entries); err != nil {
		return nil, err
	}
	out := make([]byte, BlockBytes)
	for i, st := range states {
		if st != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out, nil
}

// Scrub implements Arch (a formality for SLC: drift cannot cross the
// single mid-range threshold).
func (s *SLC) Scrub(block int) error {
	data, err := s.Read(block)
	if err != nil {
		return err
	}
	return s.Write(block, data)
}

var _ Arch = (*SLC)(nil)
