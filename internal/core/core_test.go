package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/pcmarray"
	"repro/internal/wearout"
)

// noWear disables endurance so tests control faults explicitly.
func noWear(seed uint64) pcmarray.Options {
	opt := pcmarray.DefaultOptions(seed)
	opt.EnduranceMean = 0
	return opt
}

func pattern(seed byte) []byte {
	data := make([]byte, BlockBytes)
	for i := range data {
		data[i] = seed ^ byte(i*37+11)
	}
	return data
}

func allArchs(seed uint64, blocks int) []Arch {
	return []Arch{
		NewThreeLC(blocks, ThreeLCConfig{Array: noWear(seed)}),
		NewFourLC(blocks, FourLCConfig{Array: noWear(seed)}),
		NewPermutation(blocks, noWear(seed)),
	}
}

func TestCleanRoundTripAllArchs(t *testing.T) {
	for _, a := range allArchs(1, 8) {
		for b := 0; b < a.Blocks(); b++ {
			want := pattern(byte(b))
			if err := a.Write(b, want); err != nil {
				t.Fatalf("%s: write: %v", a.Name(), err)
			}
			got, err := a.Read(b)
			if err != nil {
				t.Fatalf("%s: read: %v", a.Name(), err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: block %d corrupted", a.Name(), b)
			}
		}
	}
}

func TestReadBeforeWriteFails(t *testing.T) {
	for _, a := range allArchs(2, 2) {
		if _, err := a.Read(0); err == nil {
			t.Errorf("%s: read of unwritten block succeeded", a.Name())
		}
		if _, err := a.Read(99); err == nil {
			t.Errorf("%s: out-of-range read succeeded", a.Name())
		}
		if err := a.Write(0, []byte{1, 2, 3}); err == nil {
			t.Errorf("%s: short write accepted", a.Name())
		}
	}
}

func TestOverwriteReplacesData(t *testing.T) {
	for _, a := range allArchs(3, 1) {
		first := pattern(0xAA)
		second := pattern(0x55)
		if err := a.Write(0, first); err != nil {
			t.Fatal(err)
		}
		if err := a.Write(0, second); err != nil {
			t.Fatal(err)
		}
		got, err := a.Read(0)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if !bytes.Equal(got, second) {
			t.Fatalf("%s: overwrite not visible", a.Name())
		}
	}
}

func TestThreeLCRetainsDataForTenYears(t *testing.T) {
	// The headline result: 3LCo holds data without refresh for more than
	// ten years (Section 5.3).
	a := NewThreeLC(16, ThreeLCConfig{Array: noWear(4)})
	want := make([][]byte, a.Blocks())
	for b := range want {
		want[b] = pattern(byte(3 * b))
		if err := a.Write(b, want[b]); err != nil {
			t.Fatal(err)
		}
	}
	a.Array().Advance(10 * 365.25 * 86400)
	for b := range want {
		got, err := a.Read(b)
		if err != nil {
			t.Fatalf("block %d after 10 years: %v", b, err)
		}
		if !bytes.Equal(got, want[b]) {
			t.Fatalf("block %d lost data after 10 years", b)
		}
	}
}

func TestFourLCDriftsWithoutRefresh(t *testing.T) {
	// Conversely, 4LC data decays without refresh: after 12 days the cell
	// error rate (~several percent) swamps BCH-10 on most blocks.
	a := NewFourLC(32, FourLCConfig{Array: noWear(5)})
	for b := 0; b < a.Blocks(); b++ {
		if err := a.Write(b, pattern(byte(b))); err != nil {
			t.Fatal(err)
		}
	}
	a.Array().Advance(12 * 86400)
	bad := 0
	for b := 0; b < a.Blocks(); b++ {
		got, err := a.Read(b)
		if err != nil || !bytes.Equal(got, pattern(byte(b))) {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("no 4LC block decayed in 12 unrefreshed days; drift model inert?")
	}
}

func TestFourLCSurvivesWithRefresh(t *testing.T) {
	// With 17-minute scrubbing, 4LCo is reliable volatile memory: run 24
	// refresh periods and verify data integrity throughout.
	a := NewFourLC(4, FourLCConfig{Array: noWear(6)})
	want := make([][]byte, a.Blocks())
	for b := range want {
		want[b] = pattern(byte(b * 7))
		if err := a.Write(b, want[b]); err != nil {
			t.Fatal(err)
		}
	}
	for period := 0; period < 24; period++ {
		a.Array().Advance(17 * 60)
		for b := range want {
			if err := a.Scrub(b); err != nil {
				t.Fatalf("scrub period %d block %d: %v", period, b, err)
			}
		}
	}
	for b := range want {
		got, err := a.Read(b)
		if err != nil || !bytes.Equal(got, want[b]) {
			t.Fatalf("block %d lost data under refresh: %v", b, err)
		}
	}
}

func TestThreeLCToleratesSixWearoutFailures(t *testing.T) {
	a := NewThreeLC(1, ThreeLCConfig{Array: noWear(7)})
	// All-zero data puts every pair at [S1, S1], so a stuck-reset cell
	// (pinned at S4) deterministically fails write-and-verify.
	want := make([]byte, BlockBytes)
	for k := 0; k < 6; k++ {
		a.Array().InjectFailure(2*(20*k+1), wearout.StuckReset)
	}
	if err := a.Write(0, want); err != nil {
		t.Fatalf("write with 6 failures: %v", err)
	}
	if got := a.MarkedPairs(0); got != 6 {
		t.Fatalf("marked pairs = %d, want 6", got)
	}
	got, err := a.Read(0)
	if err != nil {
		t.Fatalf("read with 6 marked pairs: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted by mark-and-spare")
	}
}

func TestThreeLCSeventhFailureExhausts(t *testing.T) {
	a := NewThreeLC(1, ThreeLCConfig{Array: noWear(8)})
	for k := 0; k < 7; k++ {
		a.Array().InjectFailure(2*(15*k+2), wearout.StuckReset)
	}
	if err := a.Write(0, make([]byte, BlockBytes)); !errors.Is(err, ErrWornOut) {
		t.Fatalf("7 failures: err = %v, want ErrWornOut", err)
	}
}

func TestThreeLCWearoutDiscoveredViaEndurance(t *testing.T) {
	// The organic path: exhausted endurance surfaces as verify failures
	// over subsequent writes (a stuck cell fails only when its target
	// conflicts with its pinned state), and marking accumulates without
	// ever corrupting data.
	a := NewThreeLC(1, ThreeLCConfig{Array: noWear(18)})
	if err := a.Write(0, pattern(0)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		a.Array().SetEndurance(2*(25*k+3), 0)
	}
	for i := 0; i < 12; i++ {
		data := pattern(byte(i * 29))
		if err := a.Write(0, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := a.Read(0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("silent corruption at iteration %d", i)
		}
	}
	if got := a.MarkedPairs(0); got == 0 {
		t.Fatal("no failures discovered across 12 writes")
	}
}

func TestThreeLCStuckSetUnrevivableHiddenByECC(t *testing.T) {
	// Section 6.4: a stuck-set cell that cannot be forced into S4 is
	// hidden by the single-bit TEC.
	opt := noWear(9)
	opt.ReviveProbability = 0
	a := NewThreeLC(1, ThreeLCConfig{Array: opt})
	// All-ones data: every pair holds 111 → [S2, S4]... place S4 on the
	// first cell of each pair (value 7 → states S4, S2), so a stuck-set
	// first cell deterministically fails verify and triggers marking.
	want := bytes.Repeat([]byte{0xFF}, BlockBytes)
	if err := a.Write(0, want); err != nil {
		t.Fatal(err)
	}
	a.Array().InjectFailure(40, wearout.StuckSet) // cell 40 = pair 20, first cell
	if err := a.Write(0, want); err != nil {
		t.Fatalf("write with unrevivable stuck-set: %v", err)
	}
	got, err := a.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("unrevivable stuck-set cell corrupted data")
	}
}

func TestFourLCToleratesSixFailures(t *testing.T) {
	a := NewFourLC(1, FourLCConfig{Array: noWear(10)})
	want := pattern(0x99)
	for _, c := range []int{0, 31, 64, 128, 200, 255} {
		a.Array().SetEndurance(c, 0)
	}
	if err := a.Write(0, want); err != nil {
		t.Fatalf("write with 6 failures: %v", err)
	}
	if used := a.ECPEntriesUsed(0); used == 0 {
		t.Fatal("no ECP entries allocated despite failures")
	}
	got, err := a.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ECP failed to restore data")
	}
}

func TestFourLCSeventhFailureExhausts(t *testing.T) {
	a := NewFourLC(1, FourLCConfig{Array: noWear(11)})
	// All-zero data targets state S1 everywhere; stuck-reset cells all
	// fail verify at once.
	for c := 0; c < 7; c++ {
		a.Array().InjectFailure(c*30, wearout.StuckReset)
	}
	if err := a.Write(0, make([]byte, BlockBytes)); !errors.Is(err, ErrWornOut) {
		t.Fatalf("7 failures: err = %v, want ErrWornOut", err)
	}
}

func TestPermutationSurvivesModerateAging(t *testing.T) {
	a := NewPermutation(4, noWear(12))
	want := make([][]byte, a.Blocks())
	for b := range want {
		want[b] = pattern(byte(b + 100))
		if err := a.Write(b, want[b]); err != nil {
			t.Fatal(err)
		}
	}
	a.Array().Advance(3600) // one hour
	for b := range want {
		got, err := a.Read(b)
		if err != nil {
			t.Fatalf("block %d after an hour: %v", b, err)
		}
		if !bytes.Equal(got, want[b]) {
			t.Fatalf("block %d corrupted", b)
		}
	}
}

func TestPermutationToleratesHardFailures(t *testing.T) {
	a := NewPermutation(1, noWear(13))
	want := pattern(0xE1)
	for _, c := range []int{3, 50, 111, 200, 280, 320} {
		a.Array().SetEndurance(c, 0)
	}
	if err := a.Write(0, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := a.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted")
	}
}

func TestScrubRestoresMargins(t *testing.T) {
	// Scrubbing a partially drifted 4LC block rewrites nominal values, so
	// a subsequent long wait starts from fresh margins.
	a := NewFourLC(1, FourLCConfig{Array: noWear(14)})
	want := pattern(0x42)
	if err := a.Write(0, want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a.Array().Advance(17 * 60)
		if err := a.Scrub(0); err != nil {
			t.Fatalf("scrub %d: %v", i, err)
		}
	}
	got, err := a.Read(0)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("data lost across 50 scrub periods: %v", err)
	}
}

func TestDensityAnchorsTable3(t *testing.T) {
	// Table 3 densities at the six-failure design point.
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"3-ON-2", ThreeLCDensity(6), 1.41},
		{"4LCo", FourLCDensity(6), 1.52},
		{"permutation", PermutationDensity(6), 1.29},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 0.012 {
			t.Errorf("%s density = %.4f, paper says %.2f", c.name, c.got, c.want)
		}
	}
	// Section 6.5: the 3-ON-2 capacity gap vs 4LC is only ~7.4%.
	gap := 1 - ThreeLCDensity(6)/FourLCDensity(6)
	if gap < 0.06 || gap > 0.09 {
		t.Errorf("capacity gap = %.4f, paper says 7.4%%", gap)
	}
}

func TestDensityCrossoverFigure15(t *testing.T) {
	// Figure 15: mark-and-spare's 2-cells-per-failure overhead grows
	// slowest, so 3-ON-2 overtakes 4LC as tolerated failures increase.
	if ThreeLCDensity(0) >= FourLCDensity(0) {
		t.Error("at zero failures 4LC should be densest")
	}
	if ThreeLCDensity(20) <= FourLCDensity(20) {
		t.Error("at 20 failures 3-ON-2 should have overtaken 4LC")
	}
	// Permutation starts above 3-ON-2 (raw 11/7 beats 3/2) but its
	// 10-cells-per-failure ECP cost drops it below by n = 2 and it stays
	// lowest from there on.
	if PermutationDensity(0) <= ThreeLCDensity(0) {
		t.Error("at zero failures raw permutation density should exceed 3-ON-2")
	}
	for n := 2; n <= 20; n++ {
		if PermutationDensity(n) >= ThreeLCDensity(n) {
			t.Errorf("permutation density above 3-ON-2 at n=%d", n)
		}
	}
}

func TestArchReportedGeometry(t *testing.T) {
	three := NewThreeLC(1, ThreeLCConfig{Array: noWear(15)})
	if three.CellsPerBlock() != 364 {
		t.Errorf("3LC cells/block = %d, want 364", three.CellsPerBlock())
	}
	four := NewFourLC(1, FourLCConfig{Array: noWear(15)})
	if four.CellsPerBlock() != 337 {
		t.Errorf("4LC cells/block = %d, want 337 (306 array + 31 ECP)", four.CellsPerBlock())
	}
	perm := NewPermutation(1, noWear(15))
	if perm.CellsPerBlock() != 399 {
		t.Errorf("perm cells/block = %d, want 399", perm.CellsPerBlock())
	}
}

func TestWearoutUnderEndurance(t *testing.T) {
	// End-to-end: with realistic (scaled-down) endurance, repeated writes
	// eventually exhaust a 3LC block's spare pairs, and the failure is
	// reported — not silent corruption.
	opt := pcmarray.DefaultOptions(16)
	opt.EnduranceMean = 200
	opt.EnduranceSigma = 0.2
	a := NewThreeLC(1, ThreeLCConfig{Array: opt})
	var reported error
	for i := 0; i < 5000; i++ {
		data := pattern(byte(i))
		if err := a.Write(0, data); err != nil {
			reported = err
			break
		}
		got, err := a.Read(0)
		if err != nil {
			reported = err
			break
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("silent corruption at write %d", i)
		}
	}
	if !errors.Is(reported, ErrWornOut) && reported != nil {
		t.Fatalf("unexpected failure kind: %v", reported)
	}
	if reported == nil {
		t.Fatal("block never wore out at 200-cycle endurance")
	}
}

func TestStuckResetDuringOperation(t *testing.T) {
	a := NewThreeLC(1, ThreeLCConfig{Array: noWear(17)})
	want := pattern(0xF0)
	if err := a.Write(0, want); err != nil {
		t.Fatal(err)
	}
	// Pick a cell currently holding S2: when it sticks at S4 the TEC
	// mapping (S2=01 → S4=11) sees exactly one bit error, which BCH-1
	// corrects. (A stuck S1 cell would be a two-bit event — that case
	// needs the next write's verify to discover it, as the paper's
	// write-after-verify flow does.)
	victim := -1
	for i := 0; i < 342; i++ {
		if a.Array().Sense(i) == 1 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no S2 cell found in the pattern")
	}
	a.Array().InjectFailure(victim, wearout.StuckReset)
	got, err := a.Read(0)
	if err != nil {
		t.Fatalf("read with in-place stuck cell: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("single stuck cell corrupted data despite BCH-1")
	}
	// An all-zero write (every target S1) deterministically discovers the
	// failure and marks the pair.
	zero := make([]byte, BlockBytes)
	if err := a.Write(0, zero); err != nil {
		t.Fatal(err)
	}
	if a.MarkedPairs(0) != 1 {
		t.Fatalf("marked pairs = %d after discovery", a.MarkedPairs(0))
	}
	got, err = a.Read(0)
	if err != nil || !bytes.Equal(got, zero) {
		t.Fatalf("post-discovery read: %v", err)
	}
}

func BenchmarkThreeLCWriteRead(b *testing.B) {
	a := NewThreeLC(64, ThreeLCConfig{Array: noWear(1)})
	data := pattern(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := i & 63
		if err := a.Write(blk, data); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Read(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFourLCWriteRead(b *testing.B) {
	a := NewFourLC(64, FourLCConfig{Array: noWear(1)})
	data := pattern(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := i & 63
		if err := a.Write(blk, data); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Read(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPermutationWriteRead(b *testing.B) {
	a := NewPermutation(64, noWear(1))
	data := pattern(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := i & 63
		if err := a.Write(blk, data); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Read(blk); err != nil {
			b.Fatal(err)
		}
	}
}
