package core

import (
	"fmt"

	"repro/internal/bch"
	"repro/internal/bitvec"
	"repro/internal/levels"
	"repro/internal/pcmarray"
	"repro/internal/perm"
	"repro/internal/wearout"
)

// Permutation block geometry (Section 6.6, Table 3): 47 groups of 7
// cells (329 cells) hold 512 bits at 11 bits per group; ECP-6 in SLC mode
// (60 cells) and a BCH-1 safety net (10 check bits in 10 SLC cells) are
// accounted on top.
const (
	permGroups      = 47
	permDataCells   = perm.Cells * permGroups
	permParityCells = 10
	permBlockCells  = permDataCells + permParityCells
)

// Permutation is the rank-order-coding baseline architecture.
type Permutation struct {
	arr    *pcmarray.Array
	tec    *bch.Code
	ecp    wearout.ECP
	blocks []permBlock
}

type permBlock struct {
	entries []wearout.Entry
	written bool
}

// NewPermutation allocates a permutation-coded device. The cell array
// uses a seven-level uniform mapping (ranks 0..6 across the full
// resistance range) with the tightened write spread that rank-order
// programming requires.
func NewPermutation(nBlocks int, opt pcmarray.Options) *Permutation {
	if nBlocks <= 0 {
		panic("core: non-positive block count")
	}
	return &Permutation{
		arr:    pcmarray.New(levels.Uniform(7), nBlocks*permBlockCells, opt),
		tec:    bch.Must(10, 1, BlockBits),
		ecp:    wearout.SLCECPForPermutation(permDataCells),
		blocks: make([]permBlock, nBlocks),
	}
}

// Name implements Arch.
func (pc *Permutation) Name() string { return "permutation (11-on-7 + ECP-6 + BCH-1)" }

// Blocks implements Arch.
func (pc *Permutation) Blocks() int { return len(pc.blocks) }

// CellsPerBlock implements Arch.
func (pc *Permutation) CellsPerBlock() int { return permBlockCells + pc.ecp.CellOverhead() }

// Density implements Arch.
func (pc *Permutation) Density() float64 { return PermutationDensity(pc.ecp.Entries) }

// Array implements Arch.
func (pc *Permutation) Array() *pcmarray.Array { return pc.arr }

func (pc *Permutation) base(block int) int { return block * permBlockCells }

// groupBits extracts group g's 11-bit value from the data bits.
func groupBits(bits bitvec.Vector, g int) uint16 {
	var v uint16
	for b := 0; b < perm.Bits; b++ {
		i := g*perm.Bits + b
		if i < bits.Len() && bits.Get(i) != 0 {
			v |= 1 << b
		}
	}
	return v
}

// Write implements Arch.
func (pc *Permutation) Write(block int, data []byte) error {
	if err := checkBlockArgs(block, len(pc.blocks), data, true); err != nil {
		return err
	}
	blk := &pc.blocks[block]
	bits := bitvec.FromBytes(data, BlockBits)

	failures := map[int]int{}
	for g := 0; g < permGroups; g++ {
		p := perm.Encode(groupBits(bits, g))
		for cell, rank := range p {
			idx := g*perm.Cells + cell
			if pc.arr.Write(pc.base(block)+idx, rank) {
				continue
			}
			failures[idx] = rank
		}
	}
	entries, err := pc.ecp.Allocate(failures)
	if err != nil {
		return ErrWornOut
	}
	blk.entries = entries

	// BCH-1 safety net over the data bits, stored in SLC cells (states
	// 0 and 6 of the seven-level mapping).
	parity := pc.tec.Encode(bits.Clone())
	for i := 0; i < permParityCells; i++ {
		state := 0
		if parity.Get(i) != 0 {
			state = 6
		}
		pc.arr.Write(pc.base(block)+permDataCells+i, state)
	}
	blk.written = true
	return nil
}

// Read implements Arch: analog rank-order decode with maximum-likelihood
// transposition repair per group (ECP replaces failed cells' analog
// values first), then the BCH-1 safety net over the assembled bits.
func (pc *Permutation) Read(block int) ([]byte, error) {
	if err := checkBlockArgs(block, len(pc.blocks), nil, false); err != nil {
		return nil, err
	}
	blk := &pc.blocks[block]
	if !blk.written {
		return nil, fmt.Errorf("core: block %d never written", block)
	}
	// Hard-error patch: failed cells read as their intended rank's
	// nominal resistance.
	patch := map[int]float64{}
	for _, e := range blk.entries {
		if e.Valid {
			patch[e.Ptr] = perm.LevelLogR(e.Replacement)
		}
	}

	bits := bitvec.New(BlockBits)
	groupFailures := 0
	for g := 0; g < permGroups; g++ {
		var logR [perm.Cells]float64
		for cell := 0; cell < perm.Cells; cell++ {
			idx := g*perm.Cells + cell
			if v, ok := patch[idx]; ok {
				logR[cell] = v
			} else {
				logR[cell] = pc.arr.LogR(pc.base(block) + idx)
			}
		}
		val, ok := perm.RepairDecode(logR)
		if !ok {
			groupFailures++
			val = 0
		}
		for b := 0; b < perm.Bits; b++ {
			i := g*perm.Bits + b
			if i < BlockBits {
				bits.Set(i, uint(val>>b)&1)
			}
		}
	}

	parity := bitvec.New(pc.tec.ParityBits())
	for i := 0; i < permParityCells; i++ {
		if pc.arr.Sense(pc.base(block)+permDataCells+i) >= 4 {
			parity.Set(i, 1)
		}
	}
	res := pc.tec.Decode(bits, parity)
	if groupFailures > 0 || !res.OK {
		return bits.Bytes(), ErrUncorrectable
	}
	return bits.Bytes(), nil
}

// Scrub implements Arch.
func (pc *Permutation) Scrub(block int) error {
	data, err := pc.Read(block)
	if err != nil && err != ErrUncorrectable {
		return err
	}
	if werr := pc.Write(block, data); werr != nil {
		return werr
	}
	return err
}

var _ Arch = (*ThreeLC)(nil)
var _ Arch = (*FourLC)(nil)
var _ Arch = (*Permutation)(nil)
