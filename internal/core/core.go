// Package core implements the paper's memory architectures end to end:
// complete 64-byte-block read and write pipelines over a drift-accurate
// simulated PCM cell array, in the exact stage order of Figure 9 —
// array read → transient error correction → hard error correction →
// symbol decode.
//
// Three architectures are provided:
//
//   - ThreeLC: the paper's proposal (Section 6). Optimally mapped
//     three-level cells, 3-ON-2 symbol encoding (171 data pairs = 342
//     cells per 512-bit block), BCH-1 transient-error correction over a
//     708-bit message with 10 check bits stored in SLC mode, and
//     mark-and-spare wearout tolerance with 6 spare pairs.
//
//   - FourLC: the strongest four-level baseline (4LCo, Sections 5.1 and
//     6.6). Gray-coded cells, BCH-10 transient-error correction (100
//     check bits in 50 cells), and ECP-6 adapted to MLC (Figure 14).
//
//   - Permutation: the rank-order-coding baseline (Section 6.6): 11 bits
//     on 7 cells with even-permutation distance and maximum-likelihood
//     transposition repair, plus SLC ECP-6 and a BCH-1 safety net.
//
// All three expose the same Arch interface so the examples, experiments
// and benchmarks can swap designs freely.
package core

import (
	"errors"
	"fmt"

	"repro/internal/pcmarray"
)

// BlockBytes is the access granularity assumed throughout the paper.
const BlockBytes = 64

// BlockBits is the data payload per block.
const BlockBits = 8 * BlockBytes

// ErrUncorrectable reports a block whose accumulated transient errors
// exceed the architecture's ECC strength — the event whose probability is
// the block error rate of Section 4.
var ErrUncorrectable = errors.New("core: uncorrectable block")

// ErrWornOut reports a block with more hard failures than the wearout
// tolerance mechanism can absorb; real systems then retire or remap the
// block (e.g. FREE-p), which is outside this reproduction's scope.
var ErrWornOut = errors.New("core: block wearout capacity exceeded")

// Arch is a PCM block architecture: a fixed number of 64-byte blocks with
// full encode/correct/decode pipelines over a simulated cell array.
type Arch interface {
	// Name identifies the design point (3LCo, 4LCo, permutation).
	Name() string
	// Blocks returns the block capacity.
	Blocks() int
	// CellsPerBlock returns the physical cells per 64-byte block,
	// including ECC and wearout-tolerance overheads.
	CellsPerBlock() int
	// Density returns stored data bits per physical cell.
	Density() float64
	// Write stores 64 bytes into the given block.
	Write(block int, data []byte) error
	// Read retrieves the given block through the full Figure 9 pipeline.
	Read(block int) ([]byte, error)
	// Scrub refreshes the block: read, correct, and rewrite, restoring
	// nominal analog resistance values (Section 1's refresh mechanism).
	Scrub(block int) error
	// Array exposes the underlying cell array (for aging and fault
	// injection in experiments).
	Array() *pcmarray.Array
}

// checkBlockArgs validates common Write/Read preconditions.
func checkBlockArgs(block, nBlocks int, data []byte, needData bool) error {
	if block < 0 || block >= nBlocks {
		return fmt.Errorf("core: block %d out of range [0,%d)", block, nBlocks)
	}
	if needData && len(data) != BlockBytes {
		return fmt.Errorf("core: data length %d, want %d", len(data), BlockBytes)
	}
	return nil
}

// Density accounting (Table 3, Table 4, Figure 15). All three follow the
// paper's layouts for a 512-bit block tolerating n wearout failures.

// ThreeLCDensity returns bits/cell for the 3-ON-2 design: 342 data cells,
// 2n spare cells, 10 SLC cells of BCH-1 check bits (1.41 at n=6).
func ThreeLCDensity(n int) float64 {
	return float64(BlockBits) / float64(342+2*n+10)
}

// FourLCDensity returns bits/cell for the 4LCo design: 256 data cells,
// 50 cells of BCH-10 check bits, 5 cells per ECP entry plus a full flag
// (1.52 at n=6).
func FourLCDensity(n int) float64 {
	return float64(BlockBits) / float64(256+50+5*n+1)
}

// PermutationDensity returns bits/cell for permutation coding: 329 data
// cells, 10 SLC cells per ECP entry, 10 SLC cells of BCH-1 check bits
// (1.28 at n=6, the paper rounds to 1.29).
func PermutationDensity(n int) float64 {
	return float64(BlockBits) / float64(329+10*n+10)
}
