package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

// Store a 64-byte block in the paper's proposed three-level-cell
// architecture, age the device ten years without power, and read it back.
func Example() {
	opt := pcmarray.DefaultOptions(42)
	dev := core.NewThreeLC(4, core.ThreeLCConfig{Array: opt})

	data := make([]byte, core.BlockBytes)
	copy(data, "nonvolatile at last")
	if err := dev.Write(0, data); err != nil {
		fmt.Println("write:", err)
		return
	}
	dev.Array().Advance(10 * 365.25 * 86400) // ten years, no refresh

	got, err := dev.Read(0)
	if err != nil {
		fmt.Println("read:", err)
		return
	}
	fmt.Printf("%s\n", got[:19])
	fmt.Printf("density: %.2f bits/cell\n", dev.Density())
	// Output:
	// nonvolatile at last
	// density: 1.41 bits/cell
}

// Compare the density accounting of the three designs at the paper's
// six-failure tolerance point (Table 3).
func ExampleThreeLCDensity() {
	fmt.Printf("4LCo        %.2f bits/cell\n", core.FourLCDensity(6))
	fmt.Printf("3-ON-2      %.2f bits/cell\n", core.ThreeLCDensity(6))
	fmt.Printf("permutation %.2f bits/cell\n", core.PermutationDensity(6))
	// Output:
	// 4LCo        1.52 bits/cell
	// 3-ON-2      1.41 bits/cell
	// permutation 1.28 bits/cell
}
