package core

import (
	"fmt"

	"repro/internal/bch"
	"repro/internal/bitvec"
	"repro/internal/encoding"
	"repro/internal/levels"
	"repro/internal/pcmarray"
	"repro/internal/wearout"
)

// FourLC block geometry (Section 6.6, Table 3): 256 Gray-coded data
// cells, 50 cells of BCH-10 check bits (100 bits at 2 bits/cell), and an
// ECP-6 table accounted at 31 cells (Figure 14). The ECP table contents
// are held as metadata; its cell cost enters the density accounting.
const (
	fourLCDataCells   = 256
	fourLCParityCells = 50
	fourLCBlockCells  = fourLCDataCells + fourLCParityCells
)

// FourLC is the optimized four-level-cell baseline (4LCo).
type FourLC struct {
	arr    *pcmarray.Array
	tec    *bch.Code
	ecp    wearout.ECP
	blocks []fourLCBlock
}

type fourLCBlock struct {
	entries []wearout.Entry
	written bool
}

// FourLCConfig customizes the architecture.
type FourLCConfig struct {
	// Mapping overrides the cell-level mapping; nil selects the paper's
	// optimal 4LCo mapping.
	Mapping *levels.Mapping
	// Array configures the physical cell array.
	Array pcmarray.Options
}

// NewFourLC allocates a 4LCo device with the given number of 64-byte
// blocks.
func NewFourLC(nBlocks int, cfg FourLCConfig) *FourLC {
	if nBlocks <= 0 {
		panic("core: non-positive block count")
	}
	m := levels.FourLCOpt()
	if cfg.Mapping != nil {
		m = *cfg.Mapping
	}
	if m.Levels() != 4 {
		panic("core: FourLC requires a four-level mapping")
	}
	return &FourLC{
		arr:    pcmarray.New(m, nBlocks*fourLCBlockCells, cfg.Array),
		tec:    bch.Must(10, 10, BlockBits), // BCH-10 over 512 bits
		ecp:    wearout.MLCECP(),
		blocks: make([]fourLCBlock, nBlocks),
	}
}

// Name implements Arch.
func (f *FourLC) Name() string { return "4LCo (Gray + BCH-10 + ECP-6)" }

// Blocks implements Arch.
func (f *FourLC) Blocks() int { return len(f.blocks) }

// CellsPerBlock implements Arch (array cells plus the ECP table).
func (f *FourLC) CellsPerBlock() int { return fourLCBlockCells + f.ecp.CellOverhead() }

// Density implements Arch.
func (f *FourLC) Density() float64 { return FourLCDensity(f.ecp.Entries) }

// Array implements Arch.
func (f *FourLC) Array() *pcmarray.Array { return f.arr }

func (f *FourLC) base(block int) int { return block * fourLCBlockCells }

// Write implements Arch: Gray-encode, program cells, allocate ECP
// entries for verify failures, then BCH-10 parity over the post-write
// (actual) cell contents so that TEC runs before HEC at read time, per
// Figure 9's stage order.
func (f *FourLC) Write(block int, data []byte) error {
	if err := checkBlockArgs(block, len(f.blocks), data, true); err != nil {
		return err
	}
	blk := &f.blocks[block]
	bits := bitvec.FromBytes(data, BlockBits)
	states := encoding.EncodeGray4(bits)

	failures := map[int]int{}
	for i, s := range states {
		if f.arr.Write(f.base(block)+i, s) {
			continue
		}
		failures[i] = s
	}
	entries, err := f.ecp.Allocate(failures)
	if err != nil {
		return ErrWornOut
	}
	blk.entries = entries

	// TEC parity over the actual post-write states: hard-failed cells
	// hold whatever they are stuck at, and the codeword matches that, so
	// hard failures consume no BCH budget — ECP repairs them after TEC.
	actual := make([]int, fourLCDataCells)
	for i := range actual {
		actual[i] = f.arr.Sense(f.base(block) + i)
	}
	msg := encoding.DecodeGray4(actual)
	parity := f.tec.Encode(msg)
	f.writeParity(block, parity)
	blk.written = true
	return nil
}

// writeParity stores 100 check bits in 50 Gray-coded cells. Parity-cell
// wearout is absorbed by the BCH budget (the pointer format of Figure 14
// addresses only the 256 data cells).
func (f *FourLC) writeParity(block int, parity bitvec.Vector) {
	for i := 0; i < fourLCParityCells; i++ {
		b := uint(parity.Get(2*i)) | uint(parity.Get(2*i+1))<<1
		f.arr.Write(f.base(block)+fourLCDataCells+i, encoding.Gray4Encode(b))
	}
}

// Read implements Arch: array read, BCH-10 transient correction, ECP
// hard-error patch, Gray symbol decode.
func (f *FourLC) Read(block int) ([]byte, error) {
	if err := checkBlockArgs(block, len(f.blocks), nil, false); err != nil {
		return nil, err
	}
	blk := &f.blocks[block]
	if !blk.written {
		return nil, fmt.Errorf("core: block %d never written", block)
	}
	// Stage 1: array read.
	states := make([]int, fourLCDataCells)
	for i := range states {
		states[i] = f.arr.Sense(f.base(block) + i)
	}
	parity := bitvec.New(f.tec.ParityBits())
	for i := 0; i < fourLCParityCells; i++ {
		b := encoding.Gray4Decode(f.arr.Sense(f.base(block) + fourLCDataCells + i))
		parity.Set(2*i, b&1)
		parity.Set(2*i+1, (b>>1)&1)
	}

	// Stage 2: transient error correction.
	msg := encoding.DecodeGray4(states)
	res := f.tec.Decode(msg, parity)
	uncorrectable := !res.OK

	// Stage 3: hard error correction — patch the intended states of
	// failed cells into the bit stream.
	for _, e := range blk.entries {
		if !e.Valid {
			continue
		}
		b := encoding.Gray4Decode(e.Replacement)
		msg.Set(2*e.Ptr, b&1)
		msg.Set(2*e.Ptr+1, (b>>1)&1)
	}

	// Stage 4: symbol decode (Gray bits are the data bits directly).
	if uncorrectable {
		return msg.Bytes(), ErrUncorrectable
	}
	return msg.Bytes(), nil
}

// Scrub implements Arch.
func (f *FourLC) Scrub(block int) error {
	data, err := f.Read(block)
	if err != nil && err != ErrUncorrectable {
		return err
	}
	if werr := f.Write(block, data); werr != nil {
		return werr
	}
	return err
}

// ECPEntriesUsed returns the consumed ECP capacity of a block.
func (f *FourLC) ECPEntriesUsed(block int) int {
	n := 0
	for _, e := range f.blocks[block].entries {
		if e.Valid {
			n++
		}
	}
	return n
}
