package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/wearout"
)

func TestSLCRoundTripAndCenturyRetention(t *testing.T) {
	dev := NewSLC(8, noWear(1))
	want := make([][]byte, dev.Blocks())
	for b := range want {
		want[b] = pattern(byte(b * 3))
		if err := dev.Write(b, want[b]); err != nil {
			t.Fatal(err)
		}
	}
	// A century without power: drift cannot cross the single threshold.
	dev.Array().Advance(100 * 365.25 * 86400)
	for b := range want {
		got, err := dev.Read(b)
		if err != nil || !bytes.Equal(got, want[b]) {
			t.Fatalf("block %d after a century: %v", b, err)
		}
	}
}

func TestSLCDensityIsLowest(t *testing.T) {
	slc := NewSLC(1, noWear(2))
	if d := slc.Density(); d < 0.85 || d > 1.0 {
		t.Fatalf("SLC density = %v", d)
	}
	three := NewThreeLC(1, ThreeLCConfig{Array: noWear(2)})
	if slc.Density() >= three.Density() {
		t.Fatal("SLC should be less dense than 3LC — that is the whole point of MLC")
	}
}

func TestSLCWearoutTolerance(t *testing.T) {
	dev := NewSLC(1, noWear(3))
	for k := 0; k < 6; k++ {
		dev.Array().InjectFailure(40*k+5, wearout.StuckReset)
	}
	zero := make([]byte, BlockBytes)
	if err := dev.Write(0, zero); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Read(0)
	if err != nil || !bytes.Equal(got, zero) {
		t.Fatalf("six failures: %v", err)
	}
	dev.Array().InjectFailure(300, wearout.StuckReset)
	if err := dev.Write(0, zero); !errors.Is(err, ErrWornOut) {
		t.Fatalf("seventh failure: %v", err)
	}
}

func TestSLCScrubIsFormality(t *testing.T) {
	dev := NewSLC(1, noWear(4))
	want := pattern(0xA5)
	if err := dev.Write(0, want); err != nil {
		t.Fatal(err)
	}
	if err := dev.Scrub(0); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Read(0)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("scrub corrupted: %v", err)
	}
}
