package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/wearout"
)

func newHsiaoDev(seed uint64, blocks int) *ThreeLC {
	return NewThreeLC(blocks, ThreeLCConfig{UseHsiao: true, Array: noWear(seed)})
}

func TestHsiaoVariantRoundTrip(t *testing.T) {
	dev := newHsiaoDev(1, 4)
	if dev.CellsPerBlock() != 365 {
		t.Fatalf("cells/block = %d, want 365 (354 + 11 Hsiao check cells)", dev.CellsPerBlock())
	}
	for b := 0; b < dev.Blocks(); b++ {
		want := pattern(byte(b + 40))
		if err := dev.Write(b, want); err != nil {
			t.Fatal(err)
		}
		got, err := dev.Read(b)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d: %v", b, err)
		}
	}
}

func TestHsiaoVariantTenYearRetention(t *testing.T) {
	dev := newHsiaoDev(2, 8)
	for b := 0; b < dev.Blocks(); b++ {
		if err := dev.Write(b, pattern(byte(b))); err != nil {
			t.Fatal(err)
		}
	}
	dev.Array().Advance(10 * 365.25 * 86400)
	for b := 0; b < dev.Blocks(); b++ {
		got, err := dev.Read(b)
		if err != nil || !bytes.Equal(got, pattern(byte(b))) {
			t.Fatalf("block %d after 10 years: %v", b, err)
		}
	}
}

func TestHsiaoVariantWearoutTolerance(t *testing.T) {
	dev := newHsiaoDev(3, 1)
	for k := 0; k < 6; k++ {
		dev.Array().InjectFailure(2*(20*k+1), wearout.StuckReset)
	}
	zero := make([]byte, BlockBytes)
	if err := dev.Write(0, zero); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Read(0)
	if err != nil || !bytes.Equal(got, zero) {
		t.Fatalf("six failures: %v", err)
	}
	dev.Array().InjectFailure(2*150, wearout.StuckReset)
	if err := dev.Write(0, zero); !errors.Is(err, ErrWornOut) {
		t.Fatalf("seventh failure: %v", err)
	}
}

func TestHsiaoReportsDoubleStuckWhereBCHMiscorrects(t *testing.T) {
	// Two S2 cells stick at S4 mid-retention: two one-bit TEC errors.
	// BCH-1 usually miscorrects this pattern silently; Hsiao guarantees
	// a report. Run both variants over many trials and require Hsiao to
	// be flawless while BCH-1 demonstrably is not.
	countSilent := func(useHsiao bool) (silent, reported, trials int) {
		for trial := 0; trial < 30; trial++ {
			dev := NewThreeLC(1, ThreeLCConfig{UseHsiao: useHsiao, Array: noWear(uint64(100 + trial))})
			want := pattern(byte(trial))
			if err := dev.Write(0, want); err != nil {
				panic(err)
			}
			// Find two cells currently holding S2 and pin them at S4.
			found := 0
			for i := 0; i < threeLCPairCells && found < 2; i++ {
				if dev.Array().Sense(i) == 1 {
					dev.Array().InjectFailure(i, wearout.StuckReset)
					found++
				}
			}
			if found < 2 {
				continue
			}
			trials++
			got, err := dev.Read(0)
			wrong := !bytes.Equal(got, want)
			switch {
			case err != nil:
				reported++
			case wrong:
				silent++
			}
		}
		return silent, reported, trials
	}
	hSilent, hReported, hTrials := countSilent(true)
	if hTrials == 0 {
		t.Skip("no S2 pairs found; pattern degenerate")
	}
	if hSilent != 0 {
		t.Fatalf("Hsiao variant silently corrupted %d/%d double-stuck trials", hSilent, hTrials)
	}
	if hReported == 0 {
		t.Fatalf("Hsiao variant never reported the double error (%d trials)", hTrials)
	}
	bSilent, _, bTrials := countSilent(false)
	if bSilent == 0 {
		t.Logf("note: BCH-1 happened to avoid miscorrection in %d trials", bTrials)
	} else {
		t.Logf("BCH-1 silent corruptions: %d/%d; Hsiao: 0/%d", bSilent, bTrials, hTrials)
	}
}
