package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// ComponentHealth is one supervised component's state for /healthz.
type ComponentHealth struct {
	Name   string `json:"name"`
	State  string `json:"state"`
	Detail string `json:"detail,omitempty"`
}

// HealthReport is the /healthz payload.
type HealthReport struct {
	// Healthy is the overall verdict; false makes /healthz serve 503.
	Healthy    bool              `json:"healthy"`
	Components []ComponentHealth `json:"components"`
}

// AdminConfig assembles the admin HTTP plane. Only Registry is
// required; nil optional fields disable their endpoints' content (the
// routes still respond).
type AdminConfig struct {
	// Registry backs /metrics.
	Registry *Registry
	// Health sources /healthz (nil reports healthy with no components).
	Health func() HealthReport
	// Traces sources /tracez.
	Traces *TraceLog
	// Dumps sources live flight-recorder snapshots for /tracez and
	// /debug/flightrecorder.
	Dumps func() []Dump
	// ClusterInfo sources the /clusterz summary body (stats, SLO
	// status, slow-quorum log — whatever the owner wants shown).
	ClusterInfo func() any
	// Stitcher resolves /clusterz?trace=<hex> into a merged cross-node
	// timeline. Either ClusterInfo or Stitcher enables /clusterz.
	Stitcher *Stitcher
}

// AdminHandler serves the admin plane:
//
//	/metrics                 Prometheus text exposition
//	/healthz                 JSON component health; 503 when unhealthy
//	/tracez                  recent sampled traces + slow-op log (JSON)
//	/debug/flightrecorder    live per-shard flight-recorder snapshots
//	/debug/pprof/...         net/http/pprof profiles
func AdminHandler(cfg AdminConfig) http.Handler {
	mux := http.NewServeMux()
	if cfg.Registry != nil {
		mux.Handle("/metrics", cfg.Registry.Handler())
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		report := HealthReport{Healthy: true}
		if cfg.Health != nil {
			report = cfg.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !report.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, report)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				writeJSON(w, map[string]string{"error": "bad trace id: " + idStr})
				return
			}
			var payload struct {
				Now    time.Time `json:"now"`
				ID     string    `json:"id"`
				Traces []Trace   `json:"traces"`
			}
			payload.Now = time.Now()
			payload.ID = fmt.Sprintf("%016x", id)
			payload.Traces = cfg.Traces.Find(id)
			writeJSON(w, payload)
			return
		}
		var payload struct {
			Now       time.Time `json:"now"`
			SlowTotal uint64    `json:"slow_total"`
			Slow      []Trace   `json:"slow"`
			Recent    []Trace   `json:"recent"`
		}
		payload.Now = time.Now()
		if cfg.Traces != nil {
			payload.SlowTotal = cfg.Traces.SlowTotal()
			payload.Slow = cfg.Traces.Slow()
			payload.Recent = cfg.Traces.Recent()
		}
		writeJSON(w, payload)
	})
	if cfg.ClusterInfo != nil || cfg.Stitcher != nil {
		mux.HandleFunc("/clusterz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if idStr := r.URL.Query().Get("trace"); idStr != "" {
				if cfg.Stitcher == nil {
					w.WriteHeader(http.StatusNotFound)
					writeJSON(w, map[string]string{"error": "no stitcher configured"})
					return
				}
				id, err := strconv.ParseUint(idStr, 16, 64)
				if err != nil {
					w.WriteHeader(http.StatusBadRequest)
					writeJSON(w, map[string]string{"error": "bad trace id: " + idStr})
					return
				}
				writeJSON(w, cfg.Stitcher.Stitch(r.Context(), id))
				return
			}
			var payload struct {
				Now     time.Time      `json:"now"`
				Info    any            `json:"info,omitempty"`
				Sources []StitchSource `json:"sources,omitempty"`
			}
			payload.Now = time.Now()
			if cfg.ClusterInfo != nil {
				payload.Info = cfg.ClusterInfo()
			}
			if cfg.Stitcher != nil && cfg.Stitcher.Sources != nil {
				payload.Sources = cfg.Stitcher.Sources()
			}
			writeJSON(w, payload)
		})
	}
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, _ *http.Request) {
		var dumps []Dump
		if cfg.Dumps != nil {
			dumps = cfg.Dumps()
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, dumps)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
