package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSLOBurnRate(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, SLOConfig{
		Name:      "svc_availability",
		Objective: 0.9, // 10% error budget
		Window:    time.Minute,
	})

	st := s.Status()
	if st.BurnRate != 0 || !st.Met {
		t.Fatalf("empty SLO: %+v, want burn 0, met", st)
	}

	// 95 good, 5 bad: half the 10% budget.
	for i := 0; i < 95; i++ {
		s.Record(true)
	}
	for i := 0; i < 5; i++ {
		s.Record(false)
	}
	st = s.Status()
	if st.WindowGood != 95 || st.WindowBad != 5 {
		t.Fatalf("window counts %d/%d, want 95/5", st.WindowGood, st.WindowBad)
	}
	if got, want := st.BurnRate, 0.5; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("burn rate %v, want %v", got, want)
	}
	if !st.Met {
		t.Error("burn 0.5 should meet the objective")
	}
	if h := s.Health(); h.State != "ok" {
		t.Errorf("health %q, want ok", h.State)
	}

	// 20 more bad: 25/120 bad, burn > 2.
	for i := 0; i < 20; i++ {
		s.Record(false)
	}
	st = s.Status()
	if st.Met {
		t.Errorf("burn %v should miss the objective", st.BurnRate)
	}
	if st.BurnRate <= 1 {
		t.Errorf("burn rate %v, want > 1", st.BurnRate)
	}
	if h := s.Health(); h.State != "burning" {
		t.Errorf("health %q after missing the objective, want burning", h.State)
	}

	// The registry carries the counters and the burn-rate gauge.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`svc_availability_slo_events_total{outcome="good"} 95`,
		`svc_availability_slo_events_total{outcome="bad"} 25`,
		"svc_availability_slo_objective 0.9",
		"svc_availability_slo_burn_rate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("SLO exposition does not round-trip: %v", err)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	s := NewSLO(NewRegistry(), SLOConfig{
		Name:      "w",
		Objective: 0.99,
		Window:    40 * time.Millisecond,
		Slices:    4,
	})
	for i := 0; i < 10; i++ {
		s.Record(false)
	}
	if st := s.Status(); st.WindowBad != 10 {
		t.Fatalf("window bad %d, want 10", st.WindowBad)
	}
	time.Sleep(60 * time.Millisecond)
	st := s.Status()
	if st.WindowBad != 0 {
		t.Errorf("bad events survived the window: %+v", st)
	}
	if st.TotalBad != 10 {
		t.Errorf("cumulative bad %d, want 10", st.TotalBad)
	}
	if st.BurnRate != 0 {
		t.Errorf("burn %v after window expiry, want 0", st.BurnRate)
	}
}

func TestSLOObjectiveValidation(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("objective %v should panic", bad)
				}
			}()
			NewSLO(nil, SLOConfig{Name: "x", Objective: bad})
		}()
	}
}
