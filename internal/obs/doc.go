// Package obs is the self-contained observability layer of the serving
// stack: a Prometheus-style metrics registry (counters, gauges,
// cumulative-bucket histograms, text exposition format), request-trace
// identifiers with context propagation and a sampled trace/slow-op log,
// a lock-free per-shard flight recorder that preserves the last N
// operations for post-incident replay, an admin HTTP plane serving
// /metrics, /healthz, /tracez, and net/http/pprof, and build-info
// reporting for -version flags.
//
// The package has no dependencies outside the standard library and no
// knowledge of the PCM device model; internal/pcmserve wires it through
// every layer of the serving stack (client → wire protocol → server →
// shard queue → device op).
//
// The design mirrors the paper's own methodology: Sections 2.4 and 5.3
// quantify rare, time-dependent failure (drift-induced CER,
// refresh-interval availability, mark-and-spare wearout), and the same
// quantities — drift repairs, spare-pool occupancy, scrub progress,
// per-class error counts — are exported here as first-class,
// continuously observable signals rather than post-hoc printouts.
package obs
