package obs

import (
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric and label names follow the Prometheus data model.
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Label is one name/value pair attached to an instrument. Every child
// of a family must carry the same label names in the same order.
type Label struct {
	Key, Value string
}

// L builds a label list from alternating key/value strings:
// L("shard", "0", "op", "read").
func L(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("obs: L needs an even number of strings")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// Counter is a monotonically increasing uint64 instrument. All methods
// are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 instrument that can go up and down. A gauge built
// by GaugeFunc is read-only: its value is sourced from the callback at
// collection time.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set replaces the gauge value. It is a no-op on a func-backed gauge.
func (g *Gauge) Set(v float64) {
	if g.fn != nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative to decrease). It is a no-op
// on a func-backed gauge.
func (g *Gauge) Add(delta float64) {
	if g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value (calling the source callback for
// func-backed gauges).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Exemplar ties one observation to the trace that produced it, per
// OpenMetrics: each bucket keeps its most recent traced observation,
// so a histogram tail bucket resolves to a concrete request that can
// be looked up in /tracez (or stitched across nodes via /clusterz).
type Exemplar struct {
	TraceID uint64
	Value   float64
	Time    time.Time
}

// Histogram is a cumulative-bucket histogram with fixed upper bounds.
// Observations and snapshots are lock-free; concurrent snapshots may be
// momentarily skewed across buckets (each cell is individually atomic),
// which Prometheus scrapes tolerate by design.
type Histogram struct {
	bounds    []float64       // ascending upper bounds; +Inf bucket implied
	counts    []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	exemplars []atomic.Pointer[Exemplar]
	count     atomic.Uint64
	sum       atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveTrace(v, 0) }

// ObserveTrace records one value and, when traceID is nonzero, stores
// it as the landing bucket's exemplar (last writer wins).
func (h *Histogram) ObserveTrace(v float64, traceID uint64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	if traceID != 0 {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
	for {
		old := h.sum.Load()
		cur := math.Float64frombits(old)
		if h.sum.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Exemplars returns the per-bucket exemplars (nil entries where no
// traced observation has landed); the last element is the +Inf bucket.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Bounds returns the configured upper bounds (without the implicit
// +Inf bucket). The returned slice is shared; do not modify it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns per-bucket (non-cumulative) observation counts; the
// last element is the overflow (+Inf) bucket.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// instrument kinds.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one instrument plus the label values that identify it.
type child struct {
	labels []Label
	inst   any // *Counter, *Gauge, or *Histogram
}

// family is all children sharing one metric name.
type family struct {
	name, help, typ string
	labelKeys       []string

	mu       sync.Mutex
	children map[string]*child // label signature → instrument
	order    []string          // signatures in registration order
	bounds   []float64         // histogram families only
}

// Registry holds instrument families and renders them in Prometheus
// text exposition format. All methods are safe for concurrent use.
// Instrument registration is idempotent: asking for an existing
// name+labels pair returns the same instrument; asking for an existing
// name with a different type, help string, label-key set, or histogram
// bounds panics (a programming error, as in expvar.Publish).
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func labelKeys(labels []Label) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = l.Key
	}
	return out
}

// signature encodes label values unambiguously (values may contain any
// byte; keys are fixed per family).
func signature(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(strconv.Quote(l.Value))
		b.WriteByte(',')
	}
	return b.String()
}

func validateLabels(name string, labels []Label) {
	for _, l := range labels {
		if !labelNameRe.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
	}
}

// getFamily finds or creates the family, checking for metadata clashes.
func (r *Registry) getFamily(name, help, typ string, labels []Label, bounds []float64) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	validateLabels(name, labels)
	keys := labelKeys(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			labelKeys: keys,
			children:  make(map[string]*child),
			bounds:    bounds,
		}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	if len(f.labelKeys) != len(keys) {
		panic(fmt.Sprintf("obs: metric %q re-registered with label keys %v (was %v)", name, keys, f.labelKeys))
	}
	for i := range keys {
		if f.labelKeys[i] != keys[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with label keys %v (was %v)", name, keys, f.labelKeys))
		}
	}
	if typ == typeHistogram && len(f.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds (was %d)", name, len(bounds), len(f.bounds)))
	}
	return f
}

// child finds or creates the instrument for one label-value set.
func (f *family) child(labels []Label, mk func() any) any {
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[sig]; ok {
		return c.inst
	}
	c := &child{labels: labels, inst: mk()}
	f.children[sig] = c
	f.order = append(f.order, sig)
	return c.inst
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, typeCounter, labels, nil)
	return f.child(labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or retrieves) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, typeGauge, labels, nil)
	return f.child(labels, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is sourced from fn at
// collection time. Registering the same name+labels twice keeps the
// first callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, typeGauge, labels, nil)
	f.child(labels, func() any { return &Gauge{fn: fn} })
}

// Histogram registers (or retrieves) a histogram with the given
// ascending upper bounds (the +Inf bucket is implicit). bounds must be
// non-empty and strictly increasing.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	f := r.getFamily(name, help, typeHistogram, labels, bounds)
	return f.child(labels, func() any {
		return &Histogram{
			bounds:    f.bounds,
			counts:    make([]atomic.Uint64, len(f.bounds)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(f.bounds)+1),
		}
	}).(*Histogram)
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}, optionally with an extra trailing
// label (the histogram "le").
func labelString(keys []string, labels []Label, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i].Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w *strings.Builder) {
	r.mu.RLock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.Lock()
		order := make([]*child, 0, len(f.order))
		for _, sig := range f.order {
			order = append(order, f.children[sig])
		}
		f.mu.Unlock()

		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, ch := range order {
			labels := ch.labels
			ls := labelString(f.labelKeys, labels, "", "")
			switch c := ch.inst.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, ls, c.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(c.Value()))
			case *Histogram:
				counts := c.Counts()
				exemplars := c.Exemplars()
				var cum uint64
				for i, bound := range c.bounds {
					cum += counts[i]
					bl := labelString(f.labelKeys, labels, "le", formatFloat(bound))
					fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, bl, cum, exemplarSuffix(exemplars[i]))
				}
				cum += counts[len(counts)-1]
				bl := labelString(f.labelKeys, labels, "le", "+Inf")
				fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, bl, cum, exemplarSuffix(exemplars[len(exemplars)-1]))
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(c.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, cum)
			}
		}
	}
}

// exemplarSuffix renders an OpenMetrics exemplar clause for a bucket
// line (" # {trace_id=\"<hex>\"} <value> <unix-seconds>"), or "" when
// the bucket has no traced observation.
func exemplarSuffix(ex *Exemplar) string {
	if ex == nil {
		return ""
	}
	ts := float64(ex.Time.UnixNano()) / 1e9
	return fmt.Sprintf(" # {trace_id=\"%016x\"} %s %s",
		ex.TraceID, formatFloat(ex.Value), strconv.FormatFloat(ts, 'f', 3, 64))
}

// Exposition renders the registry as one exposition-format string.
func (r *Registry) Exposition() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler serves the registry at any path in the Prometheus text
// exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Exposition()))
	})
}
