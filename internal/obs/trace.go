package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace identifiers are nonzero uint64s allocated client-side, carried
// in a reserved field of the pcmserve wire protocol, and propagated
// server → shard queue → device op, so one request can be followed
// through every layer of the stack.

// traceCtr feeds NextTraceID; it is seeded once per process so IDs from
// different processes are unlikely to collide.
var traceCtr atomic.Uint64

func init() {
	traceCtr.Store(uint64(time.Now().UnixNano()))
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer that
// spreads sequential counter values across the full 64-bit space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NextTraceID allocates a fresh nonzero trace ID.
func NextTraceID() uint64 {
	for {
		if id := splitmix64(traceCtr.Add(1)); id != 0 {
			return id
		}
	}
}

type traceKey struct{}

// ContextWithTrace attaches a trace ID to ctx; operations issued under
// it reuse the ID instead of allocating one, tying multi-step work (and
// retry attempts) into one trace.
func ContextWithTrace(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFromContext returns the trace ID attached to ctx, or zero.
func TraceFromContext(ctx context.Context) uint64 {
	id, _ := ctx.Value(traceKey{}).(uint64)
	return id
}

// EnsureTrace returns ctx carrying a trace ID, allocating one if ctx
// has none, plus the ID.
func EnsureTrace(ctx context.Context) (context.Context, uint64) {
	if id := TraceFromContext(ctx); id != 0 {
		return ctx, id
	}
	id := NextTraceID()
	return ContextWithTrace(ctx, id), id
}

// Span is one shard-local slice of a traced request.
type Span struct {
	// Shard is the index of the shard that served this slice.
	Shard int `json:"shard"`
	// Wait is the time the slice spent in the shard's bounded queue
	// before the owner goroutine picked it up.
	Wait time.Duration `json:"wait_ns"`
	// Service is the device operation time.
	Service time.Duration `json:"service_ns"`
	// ScrubOps counts background scrub operations the shard executed
	// between this slice's enqueue and its completion — the scrub
	// interference visible to this request.
	ScrubOps uint32 `json:"scrub_ops"`
	// Err is the error class of the slice outcome ("" on success).
	Err string `json:"err,omitempty"`
}

// TraceEvent is one named span inside a trace above the shard layer:
// a per-replica RPC, a lock acquisition, a quorum marker. Start is the
// offset from the owning Trace's Start.
type TraceEvent struct {
	Name string `json:"name"`
	// Node names the peer the event talked to ("" for local work).
	Node  string        `json:"node,omitempty"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	Err   string        `json:"err,omitempty"`
}

// Trace is one request's span record set.
type Trace struct {
	ID     uint64    `json:"id"`
	Op     string    `json:"op"`
	Offset int64     `json:"offset"`
	Bytes  int       `json:"bytes"`
	Start  time.Time `json:"start"`
	// Cause tags background root traces with the work class that
	// spawned them ("read_repair", "hint_replay", "antientropy",
	// "join", "drain"); foreground request traces leave it empty, so
	// /tracez separates user traffic from repair traffic.
	Cause string `json:"cause,omitempty"`
	// Total is the end-to-end duration observed by the layer that
	// recorded this trace.
	Total time.Duration `json:"total_ns"`
	// Spans are shard-local slices (single-node traces).
	Spans []Span `json:"spans,omitempty"`
	// Events are named spans above the shard layer (cluster-side
	// traces: per-replica RPCs, stripe locks, quorum markers).
	Events []TraceEvent `json:"events,omitempty"`
}

// String renders a trace compactly for logs and /tracez.
func (t Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x %s off=%d len=%d total=%v", t.ID, t.Op, t.Offset, t.Bytes, t.Total)
	if t.Cause != "" {
		fmt.Fprintf(&b, " cause=%s", t.Cause)
	}
	for _, s := range t.Spans {
		fmt.Fprintf(&b, " [shard %d wait=%v service=%v", s.Shard, s.Wait, s.Service)
		if s.ScrubOps > 0 {
			fmt.Fprintf(&b, " scrubs=%d", s.ScrubOps)
		}
		if s.Err != "" {
			fmt.Fprintf(&b, " err=%s", s.Err)
		}
		b.WriteByte(']')
	}
	for _, e := range t.Events {
		fmt.Fprintf(&b, " [%s", e.Name)
		if e.Node != "" {
			fmt.Fprintf(&b, " %s", e.Node)
		}
		fmt.Fprintf(&b, " +%v dur=%v", e.Start, e.Dur)
		if e.Err != "" {
			fmt.Fprintf(&b, " err=%s", e.Err)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// TraceLog retains a bounded window of recent traces: every trace whose
// total duration crosses the slow threshold (the sampled slow-op log),
// plus one in every SampleEvery of the rest. Both windows are rings —
// new entries evict the oldest. All methods are safe for concurrent
// use.
type TraceLog struct {
	slowThreshold time.Duration
	sampleEvery   uint64

	seen atomic.Uint64

	mu         sync.Mutex
	recent     []Trace // ring of sampled fast traces
	recentNext int
	slow       []Trace // ring of slow traces
	slowNext   int

	slowTotal atomic.Uint64
}

// TraceLogConfig tunes a TraceLog; the zero value gets defaults.
type TraceLogConfig struct {
	// RecentCap bounds the sampled-trace ring (default 64).
	RecentCap int
	// SlowCap bounds the slow-op ring (default 64).
	SlowCap int
	// SampleEvery keeps one in N fast traces (default 64; 1 keeps all).
	SampleEvery int
	// SlowThreshold marks a trace slow (default 50ms; negative disables
	// the slow log).
	SlowThreshold time.Duration
}

// NewTraceLog builds a TraceLog.
func NewTraceLog(cfg TraceLogConfig) *TraceLog {
	if cfg.RecentCap <= 0 {
		cfg.RecentCap = 64
	}
	if cfg.SlowCap <= 0 {
		cfg.SlowCap = 64
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 50 * time.Millisecond
	}
	return &TraceLog{
		slowThreshold: cfg.SlowThreshold,
		sampleEvery:   uint64(cfg.SampleEvery),
		recent:        make([]Trace, 0, cfg.RecentCap),
		slow:          make([]Trace, 0, cfg.SlowCap),
	}
}

// Observe records one completed trace, deciding between the slow log
// (always kept) and the sampled recent ring.
func (l *TraceLog) Observe(t Trace) {
	if l == nil {
		return
	}
	slow := l.slowThreshold > 0 && t.Total >= l.slowThreshold
	if !slow && l.seen.Add(1)%l.sampleEvery != 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if slow {
		l.slowTotal.Add(1)
		if len(l.slow) < cap(l.slow) {
			l.slow = append(l.slow, t)
		} else {
			l.slow[l.slowNext] = t
			l.slowNext = (l.slowNext + 1) % cap(l.slow)
		}
		return
	}
	if len(l.recent) < cap(l.recent) {
		l.recent = append(l.recent, t)
	} else {
		l.recent[l.recentNext] = t
		l.recentNext = (l.recentNext + 1) % cap(l.recent)
	}
}

// ring returns buf's contents oldest-first given the next-evict index.
func ring(buf []Trace, next int) []Trace {
	out := make([]Trace, 0, len(buf))
	if len(buf) == cap(buf) {
		out = append(out, buf[next:]...)
		out = append(out, buf[:next]...)
	} else {
		out = append(out, buf...)
	}
	return out
}

// Recent returns the sampled fast traces, oldest first.
func (l *TraceLog) Recent() []Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ring(l.recent, l.recentNext)
}

// Slow returns the retained slow traces, oldest first.
func (l *TraceLog) Slow() []Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ring(l.slow, l.slowNext)
}

// SlowTotal counts every trace that crossed the slow threshold
// (including ones since evicted from the ring).
func (l *TraceLog) SlowTotal() uint64 { return l.slowTotal.Load() }

// Find returns every retained trace carrying the given ID — slow ring
// first, then sampled ring, each oldest-first. A replicated operation
// leaves one trace per replica touched, all sharing the originating
// ID, so multiple hits are the normal case.
func (l *TraceLog) Find(id uint64) []Trace {
	if l == nil || id == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Trace
	for _, t := range ring(l.slow, l.slowNext) {
		if t.ID == id {
			out = append(out, t)
		}
	}
	for _, t := range ring(l.recent, l.recentNext) {
		if t.ID == id {
			out = append(out, t)
		}
	}
	return out
}
