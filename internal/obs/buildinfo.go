package obs

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// BuildInfo returns a one-line build description for -version flags:
// module version, VCS revision and time when stamped, dirty marker,
// and the Go toolchain version. It degrades gracefully when build info
// is unavailable (e.g. binaries built outside module mode).
func BuildInfo() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "version unknown (no build info)"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	var rev, revTime string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			revTime = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", bi.Main.Path, version)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " (%s", rev)
		if dirty {
			b.WriteString("-dirty")
		}
		if revTime != "" {
			fmt.Fprintf(&b, ", %s", revTime)
		}
		b.WriteString(")")
	}
	fmt.Fprintf(&b, " %s", bi.GoVersion)
	return b.String()
}
