package obs_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if id := obs.TraceFromContext(ctx); id != 0 {
		t.Fatalf("bare context carries trace %d", id)
	}
	ctx2, id := obs.EnsureTrace(ctx)
	if id == 0 {
		t.Fatal("EnsureTrace allocated trace 0")
	}
	if got := obs.TraceFromContext(ctx2); got != id {
		t.Fatalf("TraceFromContext = %d, want %d", got, id)
	}
	// Idempotent: an existing trace is kept, not replaced.
	ctx3, id2 := obs.EnsureTrace(ctx2)
	if id2 != id || ctx3 != ctx2 {
		t.Errorf("EnsureTrace replaced existing trace %d with %d", id, id2)
	}
}

func TestNextTraceIDDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := obs.NextTraceID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %d", id)
		}
		seen[id] = true
	}
}

func TestTraceLogSlowAndSampling(t *testing.T) {
	l := obs.NewTraceLog(obs.TraceLogConfig{
		RecentCap:     4,
		SlowCap:       2,
		SampleEvery:   2,
		SlowThreshold: 10 * time.Millisecond,
	})
	// 3 slow traces into a 2-deep ring: the oldest is evicted but the
	// total keeps counting.
	for i := 0; i < 3; i++ {
		l.Observe(obs.Trace{ID: uint64(100 + i), Total: 20 * time.Millisecond})
	}
	if got := l.SlowTotal(); got != 3 {
		t.Errorf("SlowTotal = %d, want 3", got)
	}
	slow := l.Slow()
	if len(slow) != 2 || slow[0].ID != 101 || slow[1].ID != 102 {
		t.Errorf("Slow = %+v, want IDs 101,102 oldest-first", slow)
	}
	// 8 fast traces at SampleEvery=2 → 4 sampled.
	for i := 0; i < 8; i++ {
		l.Observe(obs.Trace{ID: uint64(i + 1), Total: time.Millisecond})
	}
	if got := len(l.Recent()); got != 4 {
		t.Errorf("Recent kept %d traces, want 4", got)
	}
	// A nil log must swallow observes (shard code calls it uncondit.).
	var nilLog *obs.TraceLog
	nilLog.Observe(obs.Trace{ID: 1})
}

func TestTraceString(t *testing.T) {
	tr := obs.Trace{
		ID: 0xABC, Op: "read", Offset: 128, Bytes: 64,
		Total: 3 * time.Millisecond,
		Spans: []obs.Span{{Shard: 1, Wait: time.Millisecond, Service: 2 * time.Millisecond, ScrubOps: 1, Err: "transient"}},
	}
	s := tr.String()
	for _, want := range []string{"0000000000000abc", "read", "shard 1", "scrubs=1", "err=transient"} {
		if !strings.Contains(s, want) {
			t.Errorf("Trace.String() = %q, missing %q", s, want)
		}
	}
}
