package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestAdminHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("admin_test_total", "help").Inc()
	traces := obs.NewTraceLog(obs.TraceLogConfig{SampleEvery: 1})
	traces.Observe(obs.Trace{ID: 0x123, Op: "read", Total: time.Millisecond})

	healthy := true
	h := obs.AdminHandler(obs.AdminConfig{
		Registry: reg,
		Health: func() obs.HealthReport {
			return obs.HealthReport{
				Healthy:    healthy,
				Components: []obs.ComponentHealth{{Name: "shard/0", State: "healthy"}},
			}
		},
		Traces: traces,
		Dumps: func() []obs.Dump {
			return []obs.Dump{{Shard: 0, Reason: "live snapshot"}}
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if _, err := obs.ParseExposition(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics not valid exposition: %v", err)
	}
	if !strings.Contains(body, "admin_test_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != 200 {
		t.Errorf("/healthz status = %d, want 200", resp.StatusCode)
	}
	var hr obs.HealthReport
	if err := json.Unmarshal([]byte(body), &hr); err != nil || !hr.Healthy || len(hr.Components) != 1 {
		t.Errorf("/healthz body = %q (err %v)", body, err)
	}
	healthy = false
	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unhealthy /healthz status = %d, want 503", resp.StatusCode)
	}

	resp, body = get("/tracez")
	if resp.StatusCode != 200 || !strings.Contains(body, `"recent"`) {
		t.Errorf("/tracez status=%d body=%q", resp.StatusCode, body)
	}

	resp, body = get("/debug/flightrecorder")
	if resp.StatusCode != 200 || !strings.Contains(body, "live snapshot") {
		t.Errorf("/debug/flightrecorder status=%d body=%q", resp.StatusCode, body)
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/ status = %d, want 200", resp.StatusCode)
	}
	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d, want 200", resp.StatusCode)
	}
}

func TestBuildInfo(t *testing.T) {
	s := obs.BuildInfo()
	if s == "" {
		t.Fatal("BuildInfo returned empty string")
	}
	// Under `go test` the module path and toolchain are always known.
	if !strings.Contains(s, "go1") && !strings.Contains(s, "devel") {
		t.Errorf("BuildInfo = %q, expected a Go version or devel marker", s)
	}
}
