package obs

import (
	"fmt"
	"sync"
	"time"
)

// This file implements rolling-window SLO tracking with burn-rate
// derivation, the alerting vocabulary of Google's SRE workbook: an
// objective ("99.9% of reads succeed / finish under 100ms"), a rolling
// window of good/bad events, and a burn rate — how many times faster
// than budget the service is consuming its error allowance. Burn rate
// 1.0 exactly exhausts the budget over the window; 14.4 is the classic
// page-now threshold (exhausts a 30-day budget in 2 days).

// SLOConfig describes one objective.
type SLOConfig struct {
	// Name prefixes the registered metric families (e.g.
	// "pcmcluster_read_availability" →
	// pcmcluster_read_availability_slo_events_total{outcome=...}).
	Name string
	// Help describes what counts as a good event.
	Help string
	// Objective is the target good fraction, in (0, 1): 0.999 means at
	// most one event in a thousand may be bad.
	Objective float64
	// Window is the rolling window burn rate is computed over
	// (default 5m).
	Window time.Duration
	// Slices subdivides the window ring (default 30); finer slices make
	// the window edge sharper at slightly more bookkeeping.
	Slices int
}

type sloSlice struct{ good, bad uint64 }

// SLO tracks one objective. All methods are safe for concurrent use.
type SLO struct {
	cfg      SLOConfig
	sliceDur time.Duration

	goodTotal, badTotal *Counter // cumulative, for /metrics rate() math

	mu       sync.Mutex
	slices   []sloSlice // ring; cur is the live slice
	cur      int
	curStart time.Time
}

// SLOStatus is a point-in-time snapshot of one objective.
type SLOStatus struct {
	Name       string        `json:"name"`
	Objective  float64       `json:"objective"`
	Window     time.Duration `json:"window_ns"`
	WindowGood uint64        `json:"window_good"`
	WindowBad  uint64        `json:"window_bad"`
	TotalGood  uint64        `json:"total_good"`
	TotalBad   uint64        `json:"total_bad"`
	// BadRatio is the bad fraction over the rolling window.
	BadRatio float64 `json:"bad_ratio"`
	// BurnRate is BadRatio / (1 - Objective): the multiple of the error
	// budget being consumed. 0 with no events; 1.0 burns exactly to
	// budget; >1 is over budget.
	BurnRate float64 `json:"burn_rate"`
	// Met reports whether the window is within budget (BurnRate ≤ 1).
	Met bool `json:"met"`
}

// NewSLO builds an SLO tracker and registers its instruments on reg:
// <name>_slo_events_total{outcome="good"|"bad"} cumulative counters,
// and <name>_slo_objective / <name>_slo_burn_rate gauges.
func NewSLO(reg *Registry, cfg SLOConfig) *SLO {
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		panic(fmt.Sprintf("obs: SLO %q objective %v not in (0,1)", cfg.Name, cfg.Objective))
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.Slices <= 0 {
		cfg.Slices = 30
	}
	s := &SLO{
		cfg:      cfg,
		sliceDur: cfg.Window / time.Duration(cfg.Slices),
		slices:   make([]sloSlice, cfg.Slices),
		curStart: time.Now(),
	}
	if reg != nil {
		events := cfg.Name + "_slo_events_total"
		help := cfg.Help
		if help == "" {
			help = "SLO events by outcome."
		}
		s.goodTotal = reg.Counter(events, help, L("outcome", "good")...)
		s.badTotal = reg.Counter(events, help, L("outcome", "bad")...)
		reg.GaugeFunc(cfg.Name+"_slo_objective", "Target good fraction for this objective.",
			func() float64 { return cfg.Objective })
		reg.GaugeFunc(cfg.Name+"_slo_burn_rate",
			"Error-budget burn rate over the rolling window (1.0 = exactly on budget).",
			func() float64 { return s.Status().BurnRate })
	}
	return s
}

// advanceLocked rotates the ring forward to cover now, zeroing slices
// that have fallen out of the window.
func (s *SLO) advanceLocked(now time.Time) {
	steps := int(now.Sub(s.curStart) / s.sliceDur)
	if steps <= 0 {
		return
	}
	if steps >= len(s.slices) {
		for i := range s.slices {
			s.slices[i] = sloSlice{}
		}
		s.cur = 0
		s.curStart = now
		return
	}
	for i := 0; i < steps; i++ {
		s.cur = (s.cur + 1) % len(s.slices)
		s.slices[s.cur] = sloSlice{}
	}
	s.curStart = s.curStart.Add(time.Duration(steps) * s.sliceDur)
}

// Record adds one event outcome.
func (s *SLO) Record(good bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.advanceLocked(time.Now())
	if good {
		s.slices[s.cur].good++
	} else {
		s.slices[s.cur].bad++
	}
	s.mu.Unlock()
	switch {
	case good && s.goodTotal != nil:
		s.goodTotal.Inc()
	case !good && s.badTotal != nil:
		s.badTotal.Inc()
	}
}

// Status snapshots the objective.
func (s *SLO) Status() SLOStatus {
	st := SLOStatus{Name: s.cfg.Name, Objective: s.cfg.Objective, Window: s.cfg.Window, Met: true}
	s.mu.Lock()
	s.advanceLocked(time.Now())
	for _, sl := range s.slices {
		st.WindowGood += sl.good
		st.WindowBad += sl.bad
	}
	s.mu.Unlock()
	if s.goodTotal != nil {
		st.TotalGood = s.goodTotal.Value()
	}
	if s.badTotal != nil {
		st.TotalBad = s.badTotal.Value()
	}
	if n := st.WindowGood + st.WindowBad; n > 0 {
		st.BadRatio = float64(st.WindowBad) / float64(n)
		st.BurnRate = st.BadRatio / (1 - s.cfg.Objective)
		st.Met = st.BurnRate <= 1
	}
	return st
}

// Health renders the objective as one /healthz component: "ok" within
// budget, "burning" over it. Burn state is informational — it does not
// flip the overall health verdict (a burst of slow quorums should page
// a human, not fail readiness probes).
func (s *SLO) Health() ComponentHealth {
	st := s.Status()
	state := "ok"
	if !st.Met {
		state = "burning"
	}
	return ComponentHealth{
		Name:  "slo/" + s.cfg.Name,
		State: state,
		Detail: fmt.Sprintf("objective=%g window=%s good=%d bad=%d burn=%.2f",
			st.Objective, st.Window, st.WindowGood, st.WindowBad, st.BurnRate),
	}
}
