package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements a validating parser for the Prometheus text
// exposition format (version 0.0.4) — enough for tests (and external
// consumers) to check that /metrics output is well formed and to read
// sample values back, without importing a Prometheus client library.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix on histogram series.
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar is the OpenMetrics exemplar attached to the sample, if
	// any (`# {labels} value [ts]` after the sample value).
	Exemplar *ParsedExemplar
}

// ParsedExemplar is one OpenMetrics exemplar parsed off a sample line.
type ParsedExemplar struct {
	Labels map[string]string
	Value  float64
	HasTs  bool
	Ts     float64
}

// ParsedFamily groups the samples of one metric family.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Samples []Sample
}

// ParseExposition parses and validates Prometheus text exposition
// format. It checks lexical validity (metric/label names, float
// values, escape sequences), that samples follow their family's TYPE
// line, and histogram invariants (le label present, cumulative bucket
// counts non-decreasing, +Inf bucket equal to _count).
func ParseExposition(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(fams, s.Name)
		if fam == nil {
			// Untyped metric with no TYPE line: tolerated by Prometheus,
			// registered as untyped here.
			fam = &ParsedFamily{Name: s.Name, Type: "untyped"}
			fams[s.Name] = fam
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", f.Name, err)
			}
		}
	}
	return fams, nil
}

// parseComment handles # HELP and # TYPE lines (other comments are
// ignored).
func parseComment(line string, fams map[string]*ParsedFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // plain comment
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in HELP", name)
		}
		f := fams[name]
		if f == nil {
			f = &ParsedFamily{Name: name, Type: "untyped"}
			fams[name] = f
		}
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		name := fields[2]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in TYPE", name)
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line for %q missing type", name)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %q", typ, name)
		}
		f := fams[name]
		if f == nil {
			f = &ParsedFamily{Name: name}
			fams[name] = f
		} else if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %q after its samples", name)
		}
		f.Type = typ
	}
	return nil
}

// familyFor resolves a sample name to its family, handling histogram
// and summary series suffixes.
func familyFor(fams map[string]*ParsedFamily, name string) *ParsedFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

// parseSample parses `name{k="v",...} value [timestamp]`, optionally
// followed by an OpenMetrics exemplar (`# {k="v",...} value [ts]`).
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if rest[i] == '{' {
		end, err := parseLabels(rest[i:], s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[i+end:]
	} else {
		rest = rest[i:]
	}
	// The sample's own labels are already consumed, so the first '#'
	// left on the line can only introduce an exemplar.
	if j := strings.IndexByte(rest, '#'); j >= 0 {
		ex, err := parseExemplar(strings.TrimSpace(rest[j+1:]))
		if err != nil {
			return s, fmt.Errorf("exemplar in %q: %w", line, err)
		}
		s.Exemplar = ex
		rest = rest[:j]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	if s.Exemplar != nil && !strings.HasSuffix(s.Name, "_bucket") && !strings.HasSuffix(s.Name, "_total") {
		return s, fmt.Errorf("exemplar on %q (only _bucket and _total series may carry one)", s.Name)
	}
	return s, nil
}

// parseExemplar parses the OpenMetrics exemplar clause after the '#':
// `{k="v",...} value [ts]`. The timestamp is seconds as a float.
func parseExemplar(text string) (*ParsedExemplar, error) {
	if len(text) == 0 || text[0] != '{' {
		return nil, fmt.Errorf("missing label set")
	}
	ex := &ParsedExemplar{Labels: map[string]string{}}
	end, err := parseLabels(text, ex.Labels)
	if err != nil {
		return nil, err
	}
	runes := 0
	for k, v := range ex.Labels {
		runes += len([]rune(k)) + len([]rune(v))
	}
	if runes > 128 {
		return nil, fmt.Errorf("label set exceeds 128 runes (%d)", runes)
	}
	fields := strings.Fields(text[end:])
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("malformed exemplar value")
	}
	if ex.Value, err = parseFloat(fields[0]); err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if ex.Ts, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
		ex.HasTs = true
	}
	return ex, nil
}

func parseFloat(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(tok, 64)
}

// parseLabels parses `{k="v",...}` starting at text[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(text string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(text) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if text[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("missing '=' in label set")
		}
		key := text[i : i+eq]
		if !labelNameRe.MatchString(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			return 0, fmt.Errorf("label %q value not quoted", key)
		}
		val, n, err := parseLabelValue(text[i:])
		if err != nil {
			return 0, fmt.Errorf("label %q: %w", key, err)
		}
		if _, dup := out[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val
		i += n
		if i < len(text) && text[i] == ',' {
			i++
		}
	}
}

// parseLabelValue parses a quoted, escaped label value starting at
// text[0] == '"' and returns the value plus bytes consumed.
func parseLabelValue(text string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(text); i++ {
		switch text[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(text) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch text[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", text[i])
			}
		default:
			b.WriteByte(text[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// validateHistogram checks bucket invariants for one series set: each
// distinct non-le label combination must have non-decreasing cumulative
// bucket counts ordered by le, a +Inf bucket, and _count equal to it.
func validateHistogram(f *ParsedFamily) error {
	type series struct {
		les    []float64
		counts map[float64]float64
		count  float64
		hasCnt bool
	}
	bySig := map[string]*series{}
	sigOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	get := func(sig string) *series {
		s := bySig[sig]
		if s == nil {
			s = &series{counts: map[float64]float64{}}
			bySig[sig] = s
		}
		return s
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			le, err := parseFloat(leStr)
			if err != nil {
				return fmt.Errorf("bad le %q", leStr)
			}
			sr := get(sigOf(s.Labels))
			sr.les = append(sr.les, le)
			sr.counts[le] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			sr := get(sigOf(s.Labels))
			sr.count = s.Value
			sr.hasCnt = true
		}
	}
	for sig, sr := range bySig {
		sort.Float64s(sr.les)
		if len(sr.les) == 0 || !math.IsInf(sr.les[len(sr.les)-1], 1) {
			return fmt.Errorf("series {%s} missing +Inf bucket", sig)
		}
		prev := -1.0
		for _, le := range sr.les {
			c := sr.counts[le]
			if c < prev {
				return fmt.Errorf("series {%s} bucket counts decrease at le=%g", sig, le)
			}
			prev = c
		}
		if sr.hasCnt && sr.count != sr.counts[math.Inf(1)] {
			return fmt.Errorf("series {%s} _count %g != +Inf bucket %g", sig, sr.count, sr.counts[math.Inf(1)])
		}
	}
	return nil
}
