package obs_test

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRegistryExposition(t *testing.T) {
	reg := obs.NewRegistry()
	reads := reg.Counter("test_ops_total", "Ops by kind.", obs.L("op", "read")...)
	writes := reg.Counter("test_ops_total", "Ops by kind.", obs.L("op", "write")...)
	reads.Add(3)
	writes.Inc()

	g := reg.Gauge("test_depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	reg.GaugeFunc("test_funcgauge", "Sourced at collection.", func() float64 { return 42 })

	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}

	fams, err := obs.ParseExposition(strings.NewReader(reg.Exposition()))
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, reg.Exposition())
	}

	ops := fams["test_ops_total"]
	if ops == nil || ops.Type != "counter" {
		t.Fatalf("test_ops_total family = %+v", ops)
	}
	byOp := map[string]float64{}
	for _, s := range ops.Samples {
		byOp[s.Labels["op"]] = s.Value
	}
	if byOp["read"] != 3 || byOp["write"] != 1 {
		t.Errorf("ops samples = %v, want read=3 write=1", byOp)
	}

	if got := fams["test_depth"].Samples[0].Value; got != 5 {
		t.Errorf("test_depth = %g, want 5", got)
	}
	if got := fams["test_funcgauge"].Samples[0].Value; got != 42 {
		t.Errorf("test_funcgauge = %g, want 42", got)
	}

	lat := fams["test_latency_seconds"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("test_latency_seconds family = %+v", lat)
	}
	buckets := map[string]float64{}
	var count, sum float64
	for _, s := range lat.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			buckets[s.Labels["le"]] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		}
	}
	// Cumulative: ≤0.001 → 1, ≤0.01 → 3, ≤0.1 → 4, +Inf → 5.
	want := map[string]float64{"0.001": 1, "0.01": 3, "0.1": 4, "+Inf": 5}
	for le, w := range want {
		if buckets[le] != w {
			t.Errorf("bucket le=%s = %g, want %g", le, buckets[le], w)
		}
	}
	if count != 5 {
		t.Errorf("_count = %g, want 5", count)
	}
	if math.Abs(sum-5.0605) > 1e-9 {
		t.Errorf("_sum = %g, want 5.0605", sum)
	}

	if h.Count() != 5 {
		t.Errorf("Histogram.Count = %d, want 5", h.Count())
	}
	if got := h.Counts(); len(got) != 4 || got[3] != 1 {
		t.Errorf("Histogram.Counts = %v, want 4 buckets with overflow 1", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("dup_total", "help", obs.L("k", "v")...)
	b := reg.Counter("dup_total", "help", obs.L("k", "v")...)
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("idempotent registration did not share state")
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("clash_total", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("clash_total", "help")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	reg := obs.NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	reg.Counter("bad-name", "help")
}

func TestLabelValueEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	ugly := "a\"b\\c\nd"
	reg.Counter("esc_total", "help", obs.L("path", ugly)...).Inc()
	fams, err := obs.ParseExposition(strings.NewReader(reg.Exposition()))
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, reg.Exposition())
	}
	got := fams["esc_total"].Samples[0].Labels["path"]
	if got != ugly {
		t.Errorf("label round-trip = %q, want %q", got, ugly)
	}
}

func TestHandlerContentType(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total", "help").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want exposition 0.0.4", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestParseExpositionRejectsBadHistograms(t *testing.T) {
	cases := map[string]string{
		"missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 1
h_count 1
`,
		"decreasing buckets": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 3
h_count 3
`,
		"count mismatch": `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_count 4
`,
	}
	for name, text := range cases {
		if _, err := obs.ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted invalid exposition", name)
		}
	}
}
