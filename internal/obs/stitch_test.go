package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tracezServer serves a TraceLog the way a node admin plane would, so
// the stitcher's /tracez?id= fetch path is exercised end to end.
func tracezServer(t *testing.T, log *TraceLog) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(AdminHandler(AdminConfig{
		Registry: NewRegistry(),
		Traces:   log,
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestStitcherMergesClientAndNodes(t *testing.T) {
	const id = uint64(0xabcdef0123456789)
	t0 := time.Now()

	local := NewTraceLog(TraceLogConfig{SampleEvery: 1})
	local.Observe(Trace{
		ID: id, Op: "quorum_read", Offset: 7, Start: t0, Total: 4 * time.Millisecond,
		Events: []TraceEvent{
			{Name: "replica_read", Node: "n1:1", Start: 0, Dur: time.Millisecond},
			{Name: "quorum_met", Start: 2 * time.Millisecond},
		},
	})

	nodeLog := NewTraceLog(TraceLogConfig{SampleEvery: 1})
	nodeLog.Observe(Trace{
		ID: id, Op: "read", Offset: 448, Start: t0.Add(time.Millisecond),
		Total: time.Millisecond,
		Spans: []Span{{Shard: 1, Wait: 100 * time.Microsecond, Service: 800 * time.Microsecond}},
	})
	// A different trace on the same node must not leak into the stitch.
	nodeLog.Observe(Trace{ID: id + 1, Op: "read", Start: t0})

	otherLog := NewTraceLog(TraceLogConfig{SampleEvery: 1})

	s := &Stitcher{
		Local: local,
		Sources: func() []StitchSource {
			return []StitchSource{
				{Node: "n1:1", URL: tracezServer(t, nodeLog).URL},
				{Node: "n2:2", URL: tracezServer(t, otherLog).URL},
			}
		},
	}
	st := s.Stitch(context.Background(), id)

	if st.ID != "abcdef0123456789" {
		t.Errorf("stitched ID %q", st.ID)
	}
	if len(st.Client) != 1 {
		t.Fatalf("client traces %d, want 1", len(st.Client))
	}
	if len(st.Nodes) != 2 {
		t.Fatalf("node results %d, want 2", len(st.Nodes))
	}
	if len(st.Nodes[0].Traces) != 1 || st.Nodes[0].Err != "" {
		t.Fatalf("n1 spans: %+v", st.Nodes[0])
	}
	if len(st.Nodes[1].Traces) != 0 || st.Nodes[1].Err != "" {
		t.Fatalf("n2 should have no spans and no error: %+v", st.Nodes[1])
	}

	tl := strings.Join(st.Timeline, "\n")
	for _, want := range []string{"client", "client.replica_read", "client.quorum_met", "node n1:1", "shard=1"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	// Ordered by absolute time: the client root precedes the node span.
	if len(st.Timeline) > 0 && !strings.Contains(st.Timeline[0], "client") {
		t.Errorf("timeline should start with the client root:\n%s", tl)
	}
}

func TestStitcherUnreachableSource(t *testing.T) {
	s := &Stitcher{
		Local:  NewTraceLog(TraceLogConfig{}),
		Client: &http.Client{Timeout: 500 * time.Millisecond},
		Sources: func() []StitchSource {
			return []StitchSource{{Node: "gone", URL: "http://127.0.0.1:1"}}
		},
	}
	st := s.Stitch(context.Background(), 42)
	if len(st.Nodes) != 1 || st.Nodes[0].Err == "" {
		t.Fatalf("unreachable source should report an error: %+v", st.Nodes)
	}
}

// TestExemplarRoundTrip pins the OpenMetrics exemplar syntax through
// the full loop: traced observation → exposition → parser.
func TestExemplarRoundTrip(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // untraced: no exemplar on this bucket
	h.ObserveTrace(0.05, 0xdeadbeef)
	h.ObserveTrace(0.5, 0xcafe)
	h.ObserveTrace(0.6, 0xf00d) // same bucket: last writer wins

	ex := h.Exemplars()
	if ex[0] != nil {
		t.Error("untraced bucket grew an exemplar")
	}
	if ex[1] == nil || ex[1].TraceID != 0xdeadbeef {
		t.Errorf("bucket 1 exemplar: %+v", ex[1])
	}
	if ex[2] == nil || ex[2].TraceID != 0xf00d || ex[2].Value != 0.6 {
		t.Errorf("bucket 2 exemplar should be the last observation: %+v", ex[2])
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="00000000deadbeef"} 0.05`) {
		t.Errorf("exposition missing deadbeef exemplar:\n%s", out)
	}

	fams, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	var got []string
	for _, s := range fams["req_seconds"].Samples {
		if s.Exemplar == nil {
			continue
		}
		if !s.Exemplar.HasTs {
			t.Errorf("exemplar on %v lacks a timestamp", s.Labels)
		}
		got = append(got, s.Exemplar.Labels["trace_id"])
	}
	want := []string{"00000000deadbeef", "000000000000f00d"}
	if len(got) != len(want) {
		t.Fatalf("parsed exemplars %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("exemplar %d: %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTraceLogFind(t *testing.T) {
	l := NewTraceLog(TraceLogConfig{SampleEvery: 1, SlowThreshold: 10 * time.Millisecond})
	l.Observe(Trace{ID: 1, Op: "fast", Total: time.Millisecond})
	l.Observe(Trace{ID: 2, Op: "slow", Total: 50 * time.Millisecond})
	l.Observe(Trace{ID: 1, Op: "fast2", Total: time.Millisecond})

	if got := len(l.Find(1)); got != 2 {
		t.Errorf("Find(1) returned %d traces, want 2", got)
	}
	if got := l.Find(2); len(got) != 1 || got[0].Op != "slow" {
		t.Errorf("Find(2): %+v", got)
	}
	if got := l.Find(99); len(got) != 0 {
		t.Errorf("Find(99): %+v", got)
	}
}
