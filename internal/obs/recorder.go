package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// EventClass classifies a recorded operation's outcome.
type EventClass uint8

const (
	// EventOK is a successful operation.
	EventOK EventClass = iota
	// EventTransient is a failure that may succeed on retry.
	EventTransient
	// EventPermanent is a failure that will repeat identically.
	EventPermanent
	// EventCorrupt is an uncorrectable (data-loss) failure.
	EventCorrupt
)

// String implements fmt.Stringer.
func (c EventClass) String() string {
	switch c {
	case EventOK:
		return "ok"
	case EventTransient:
		return "transient"
	case EventPermanent:
		return "permanent"
	case EventCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("EventClass(%d)", uint8(c))
}

// Event is one recorded operation.
type Event struct {
	// Seq is the operation's position in the recorder's history; dumps
	// are ordered by Seq.
	Seq uint64 `json:"seq"`
	// TraceID ties the event to its request trace (0 for untraced work
	// such as background scrubs).
	TraceID uint64 `json:"trace_id"`
	// Op is the operation code (the pcmserve wire op, or an internal
	// code such as scrub).
	Op uint8 `json:"op"`
	// Block is the device block the operation touched (its starting
	// block for multi-block ranges).
	Block int64 `json:"block"`
	// Latency is the device service time, saturating at ~2^47 µs.
	Latency time.Duration `json:"latency_ns"`
	// Class is the outcome class.
	Class EventClass `json:"class"`
	// Time is the completion time, unix nanoseconds.
	Time int64 `json:"time"`
}

// slot is one ring entry. Each field is individually atomic and the seq
// word brackets writes (odd while a write is in progress), so readers
// can detect and skip slots being overwritten instead of blocking the
// writer — the recorder never adds a lock to the op hot path.
type slot struct {
	seq    atomic.Uint64 // 2*recordSeq+1 while writing, 2*recordSeq+2 when stable
	trace  atomic.Uint64
	block  atomic.Uint64
	meta   atomic.Uint64 // op | class<<8 | latencyMicros<<16
	tstamp atomic.Uint64
}

// FlightRecorder is a lock-free ring buffer of the last N operations.
// It is designed for one writer (the shard owner goroutine) and any
// number of concurrent readers (dump on panic, admin snapshots); a
// torn slot — one mid-overwrite during a snapshot — is skipped, never
// misread.
type FlightRecorder struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64 // sequence of the next record
}

// NewFlightRecorder builds a recorder retaining the last depth
// operations (rounded up to a power of two, minimum 16).
func NewFlightRecorder(depth int) *FlightRecorder {
	n := 16
	for n < depth {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Depth returns the ring capacity.
func (r *FlightRecorder) Depth() int { return len(r.slots) }

const maxLatencyMicros = (1 << 47) - 1

// Record appends one event. Only Seq and Time are assigned here; other
// fields come from ev.
func (r *FlightRecorder) Record(ev Event) {
	seq := r.next.Add(1) - 1
	s := &r.slots[seq&r.mask]
	us := uint64(ev.Latency.Microseconds())
	if us > maxLatencyMicros {
		us = maxLatencyMicros
	}
	s.seq.Store(2*seq + 1) // mark: write in progress
	s.trace.Store(ev.TraceID)
	s.block.Store(uint64(ev.Block))
	s.meta.Store(uint64(ev.Op) | uint64(ev.Class)<<8 | us<<16)
	s.tstamp.Store(uint64(time.Now().UnixNano()))
	s.seq.Store(2*seq + 2) // publish
}

// Snapshot returns the recorded events oldest-first. Slots that are
// mid-overwrite (or already recycled) during the scan are skipped, so
// a snapshot taken concurrently with traffic returns a consistent —
// possibly slightly shorter — history.
func (r *FlightRecorder) Snapshot() []Event {
	end := r.next.Load()
	start := uint64(0)
	if end > uint64(len(r.slots)) {
		start = end - uint64(len(r.slots))
	}
	out := make([]Event, 0, end-start)
	for seq := start; seq < end; seq++ {
		s := &r.slots[seq&r.mask]
		if s.seq.Load() != 2*seq+2 {
			continue // being overwritten, or never stably written
		}
		trace := s.trace.Load()
		block := s.block.Load()
		meta := s.meta.Load()
		ts := s.tstamp.Load()
		if s.seq.Load() != 2*seq+2 {
			continue // overwritten underneath us: discard the torn read
		}
		out = append(out, Event{
			Seq:     seq,
			TraceID: trace,
			Op:      uint8(meta),
			Block:   int64(block),
			Latency: time.Duration(meta>>16) * time.Microsecond,
			Class:   EventClass(meta >> 8),
			Time:    int64(ts),
		})
	}
	return out
}

// Dump is one emitted flight-recorder capture: the event window that
// preceded a panic, shard death, or uncorrectable error.
type Dump struct {
	// Shard is the index of the shard whose recorder was dumped.
	Shard int `json:"shard"`
	// Reason describes the trigger ("panic: ...", "shard dead",
	// "uncorrectable error").
	Reason string `json:"reason"`
	// Time is the capture time, unix nanoseconds.
	Time int64 `json:"time"`
	// Events is the preserved history, oldest first.
	Events []Event `json:"events"`
}

// FormatDump renders a dump for logs: one header line, then one line
// per event.
func FormatDump(d Dump, opName func(uint8) string) string {
	if opName == nil {
		opName = func(op uint8) string { return fmt.Sprintf("op%d", op) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: shard %d: %s (%d events)\n", d.Shard, d.Reason, len(d.Events))
	for _, ev := range d.Events {
		fmt.Fprintf(&b, "  #%d %s block=%d latency=%v class=%s",
			ev.Seq, opName(ev.Op), ev.Block, ev.Latency, ev.Class)
		if ev.TraceID != 0 {
			fmt.Fprintf(&b, " trace=%016x", ev.TraceID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
