package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file stitches one operation's spans back together across a
// cluster. The client side of a replicated op records a trace with
// per-replica events; each node it touched records its own server-side
// trace (queue wait, device service, scrub interference) under the
// same ID, reachable at that node's /tracez?id=<hex>. The Stitcher
// fetches all of them and merges one timeline, so "the quorum read was
// slow" decomposes into "node C sat 18ms in its shard queue behind a
// refresh burst".

// StitchSource is one peer admin plane the stitcher queries.
type StitchSource struct {
	// Node is the serving address the cluster knows the peer by.
	Node string `json:"node"`
	// URL is the peer's admin base URL (e.g. "http://127.0.0.1:9091").
	URL string `json:"url"`
}

// NodeSpans is what one source returned for a trace ID.
type NodeSpans struct {
	Node   string  `json:"node"`
	URL    string  `json:"url"`
	Err    string  `json:"err,omitempty"`
	Traces []Trace `json:"traces,omitempty"`
}

// StitchedTrace is one operation's merged cross-node view.
type StitchedTrace struct {
	ID string `json:"id"`
	// Client holds the cluster-side traces for the ID (quorum fan-out
	// events), from the stitcher's local log.
	Client []Trace `json:"client,omitempty"`
	// Nodes holds each peer's server-side traces for the ID.
	Nodes []NodeSpans `json:"nodes"`
	// Timeline is the merged human-readable view, one span per line,
	// ordered by start time.
	Timeline []string `json:"timeline,omitempty"`
}

// Stitcher resolves a trace ID across a cluster's admin planes.
type Stitcher struct {
	// Local is the cluster-client trace log (may be nil).
	Local *TraceLog
	// Sources lists the live node admin planes to query.
	Sources func() []StitchSource
	// Client is the HTTP client for span fetches; nil gets a 2s-timeout
	// default.
	Client *http.Client
}

func (s *Stitcher) httpClient() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: 2 * time.Second}
}

// Stitch fetches every source's spans for id (concurrently) and merges
// them with the local client-side trace into one StitchedTrace.
func (s *Stitcher) Stitch(ctx context.Context, id uint64) StitchedTrace {
	st := StitchedTrace{ID: fmt.Sprintf("%016x", id)}
	st.Client = s.Local.Find(id)

	var sources []StitchSource
	if s.Sources != nil {
		sources = s.Sources()
	}
	st.Nodes = make([]NodeSpans, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src StitchSource) {
			defer wg.Done()
			st.Nodes[i] = s.fetch(ctx, src, id)
		}(i, src)
	}
	wg.Wait()
	st.Timeline = st.renderTimeline()
	return st
}

// tracezByID mirrors the /tracez?id= response shape.
type tracezByID struct {
	Traces []Trace `json:"traces"`
}

func (s *Stitcher) fetch(ctx context.Context, src StitchSource, id uint64) NodeSpans {
	ns := NodeSpans{Node: src.Node, URL: src.URL}
	url := fmt.Sprintf("%s/tracez?id=%016x", strings.TrimSuffix(src.URL, "/"), id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		ns.Err = err.Error()
		return ns
	}
	resp, err := s.httpClient().Do(req)
	if err != nil {
		ns.Err = err.Error()
		return ns
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ns.Err = fmt.Sprintf("status %d", resp.StatusCode)
		return ns
	}
	var payload tracezByID
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&payload); err != nil {
		ns.Err = err.Error()
		return ns
	}
	ns.Traces = payload.Traces
	return ns
}

// timelineEntry is one row of the merged view before formatting.
type timelineEntry struct {
	at   time.Time
	text string
}

// renderTimeline flattens client events and node spans into one list
// ordered by absolute start time, offset from the earliest span.
func (st StitchedTrace) renderTimeline() []string {
	var entries []timelineEntry
	for _, t := range st.Client {
		who := "client"
		if t.Cause != "" {
			who = "client/" + t.Cause
		}
		entries = append(entries, timelineEntry{t.Start,
			fmt.Sprintf("%-28s %s block_off=%d total=%v", who, t.Op, t.Offset, round(t.Total))})
		for _, e := range t.Events {
			node := e.Node
			if node == "" {
				node = "-"
			}
			text := fmt.Sprintf("%-28s %s dur=%v", "client."+e.Name, node, round(e.Dur))
			if e.Err != "" {
				text += " err=" + e.Err
			}
			entries = append(entries, timelineEntry{t.Start.Add(e.Start), text})
		}
	}
	for _, n := range st.Nodes {
		for _, t := range n.Traces {
			for _, sp := range t.Spans {
				text := fmt.Sprintf("%-28s %s shard=%d wait=%v service=%v",
					"node "+n.Node, t.Op, sp.Shard, round(sp.Wait), round(sp.Service))
				if sp.ScrubOps > 0 {
					text += fmt.Sprintf(" scrubs=%d", sp.ScrubOps)
				}
				if sp.Err != "" {
					text += " err=" + sp.Err
				}
				entries = append(entries, timelineEntry{t.Start, text})
			}
			if len(t.Spans) == 0 {
				entries = append(entries, timelineEntry{t.Start,
					fmt.Sprintf("%-28s %s total=%v", "node "+n.Node, t.Op, round(t.Total))})
			}
		}
	}
	if len(entries) == 0 {
		return nil
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].at.Before(entries[j].at) })
	t0 := entries[0].at
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = fmt.Sprintf("%+9.3fms %s", float64(e.at.Sub(t0))/1e6, e.text)
	}
	return out
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
