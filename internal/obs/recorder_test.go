package obs_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestFlightRecorderRoundTrip(t *testing.T) {
	r := obs.NewFlightRecorder(16)
	r.Record(obs.Event{
		TraceID: 0xFEED,
		Op:      2,
		Block:   42,
		Latency: 1500 * time.Microsecond,
		Class:   obs.EventCorrupt,
	})
	evs := r.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Seq != 0 || ev.TraceID != 0xFEED || ev.Op != 2 || ev.Block != 42 ||
		ev.Latency != 1500*time.Microsecond || ev.Class != obs.EventCorrupt {
		t.Errorf("round-trip mismatch: %+v", ev)
	}
	if ev.Time == 0 {
		t.Error("event time not stamped")
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := obs.NewFlightRecorder(16)
	const total = 100
	for i := 0; i < total; i++ {
		r.Record(obs.Event{Block: int64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != r.Depth() {
		t.Fatalf("Snapshot len = %d, want depth %d", len(evs), r.Depth())
	}
	// Oldest-first and contiguous: the last Depth() blocks in order.
	for i, ev := range evs {
		wantBlock := int64(total - r.Depth() + i)
		if ev.Block != wantBlock {
			t.Fatalf("event %d: block = %d, want %d", i, ev.Block, wantBlock)
		}
		if i > 0 && ev.Seq != evs[i-1].Seq+1 {
			t.Fatalf("event %d: seq %d not contiguous after %d", i, ev.Seq, evs[i-1].Seq)
		}
	}
}

func TestFlightRecorderDepthRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 16}, {16, 16}, {17, 32}, {100, 128}} {
		if got := obs.NewFlightRecorder(tc.in).Depth(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Depth() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestFlightRecorderConcurrent drives one writer against concurrent
// snapshotters; under -race this proves the seq-bracketing protocol has
// no data races, and every returned snapshot must be ordered.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := obs.NewFlightRecorder(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Record(obs.Event{Block: int64(i)})
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				evs := r.Snapshot()
				for j := 1; j < len(evs); j++ {
					if evs[j].Seq <= evs[j-1].Seq {
						t.Errorf("snapshot out of order: seq %d after %d", evs[j].Seq, evs[j-1].Seq)
						return
					}
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestFormatDump(t *testing.T) {
	d := obs.Dump{
		Shard:  3,
		Reason: "panic: boom",
		Events: []obs.Event{
			{Seq: 7, Op: 1, Block: 9, Latency: time.Millisecond, Class: obs.EventOK, TraceID: 0xBEEF},
			{Seq: 8, Op: 2, Block: 10, Class: obs.EventTransient},
		},
	}
	s := obs.FormatDump(d, func(op uint8) string {
		if op == 1 {
			return "read"
		}
		return "write"
	})
	for _, want := range []string{"shard 3", "panic: boom", "2 events", "read", "write", "000000000000beef", "class=transient"} {
		if !strings.Contains(s, want) {
			t.Errorf("FormatDump missing %q:\n%s", want, s)
		}
	}
}
