package encoding

// Smart encoding (Section 5.1). Helmet-style selective state rotation:
// cells are processed in groups; for each group the encoder tries the
// four cyclic state rotations and keeps the one with the fewest cells in
// the vulnerable states S2 and S3, spending two flag bits per group. The
// paper models the net effect as a skewed state-occurrence probability
// (35% S1/S4, 15% S2/S3); this implementation provides the actual
// mechanism so the achieved skew can be measured on real data
// distributions (it depends on value locality, as the paper cautions).

// SmartGroupCells is the rotation-group size in cells. A 256-cell data
// block uses 16 groups and 32 flag bits (16 flag cells in SLC mode).
const SmartGroupCells = 16

// vulnerable4 reports whether a four-level state is drift-vulnerable.
func vulnerable4(state int) bool { return state == 1 || state == 2 }

// SmartEncode4 rotates each group of four-level cell states to minimize
// vulnerable-state occupancy. It returns the rotated states and one
// 2-bit rotation flag per group. Groups shorter than SmartGroupCells at
// the tail are handled.
func SmartEncode4(cells []int) (out []int, flags []uint8) {
	out = make([]int, len(cells))
	nGroups := (len(cells) + SmartGroupCells - 1) / SmartGroupCells
	flags = make([]uint8, nGroups)
	for g := 0; g < nGroups; g++ {
		lo := g * SmartGroupCells
		hi := lo + SmartGroupCells
		if hi > len(cells) {
			hi = len(cells)
		}
		bestRot, bestCount := 0, 1<<30
		for rot := 0; rot < 4; rot++ {
			count := 0
			for _, s := range cells[lo:hi] {
				if vulnerable4((s + rot) % 4) {
					count++
				}
			}
			if count < bestCount {
				bestRot, bestCount = rot, count
			}
		}
		flags[g] = uint8(bestRot)
		for i := lo; i < hi; i++ {
			out[i] = (cells[i] + bestRot) % 4
		}
	}
	return out, flags
}

// SmartDecode4 inverts SmartEncode4.
func SmartDecode4(cells []int, flags []uint8) []int {
	out := make([]int, len(cells))
	for i, s := range cells {
		rot := int(flags[i/SmartGroupCells])
		out[i] = ((s-rot)%4 + 4) % 4
	}
	return out
}

// StateHistogram counts state occupancy, for measuring the skew a smart
// encoding actually achieves against the paper's assumed 35/15/15/35.
func StateHistogram(cells []int, levels int) []float64 {
	counts := make([]float64, levels)
	for _, s := range cells {
		counts[s]++
	}
	if len(cells) > 0 {
		for i := range counts {
			counts[i] /= float64(len(cells))
		}
	}
	return counts
}
