package encoding_test

import (
	"fmt"

	"repro/internal/encoding"
)

// Walk Table 2: three bits on two ternary cells, with [S4,S4] reserved
// as the INV marker for mark-and-spare.
func Example() {
	names := []string{"S1", "S2", "S4"}
	c1, c2 := encoding.EncodePair(0b101)
	fmt.Printf("101 -> [%s %s]\n", names[c1], names[c2])

	bits, inv := encoding.DecodePair(c1, c2)
	fmt.Printf("decode: %03b inv=%v\n", bits, inv)

	_, inv = encoding.DecodePair(2, 2)
	fmt.Printf("[S4 S4] is INV: %v\n", inv)
	fmt.Printf("512 bits need %d cells\n", encoding.ThreeOnTwoCells(512))
	// Output:
	// 101 -> [S2 S4]
	// decode: 101 inv=false
	// [S4 S4] is INV: true
	// 512 bits need 342 cells
}

// Generalize to five-level cells (Section 8): six bits on three cells.
func ExampleEnumerative() {
	e := encoding.Enumerative{Levels: 5, Cells: 3}
	fmt.Println("capacity:", e.Capacity(), "bits; has INV:", e.HasINV())
	cells := e.EncodeGroup(0b101101)
	fmt.Println("cells:", cells)
	val, inv, ok := e.DecodeGroup(cells)
	fmt.Printf("decode: %06b inv=%v ok=%v\n", val, inv, ok)
	// Output:
	// capacity: 6 bits; has INV: true
	// cells: [1 4 0]
	// decode: 101101 inv=false ok=true
}
