package encoding

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
)

// Enumerative is the Section 8 generalization of 3-ON-2 to arbitrary
// non-power-of-two level counts: a group of Cells cells with Levels
// levels each stores Capacity() = floor(log2(Levels^Cells)) bits by
// mixed-radix enumeration, with the all-highest-state combination kept
// out of the data range whenever the radix space has slack — preserving
// the INV convention that enables mark-and-spare.
//
// Enumerative{Levels: 3, Cells: 2} is exactly the paper's 3-ON-2.
type Enumerative struct {
	Levels int
	Cells  int
}

// Capacity returns the number of data bits stored per group.
func (e Enumerative) Capacity() int {
	if e.Levels < 2 || e.Cells < 1 {
		panic("encoding: bad enumerative parameters")
	}
	return int(math.Floor(float64(e.Cells) * math.Log2(float64(e.Levels))))
}

// combos returns Levels^Cells as a uint64, panicking on overflow (the
// group sizes used here are tiny).
func (e Enumerative) combos() uint64 {
	out := uint64(1)
	for i := 0; i < e.Cells; i++ {
		next := out * uint64(e.Levels)
		if next/uint64(e.Levels) != out {
			panic("encoding: enumerative group too large")
		}
		out = next
	}
	return out
}

// HasINV reports whether the group reserves the all-highest combination
// as an INV marker (true whenever the radix space exceeds the bit space).
func (e Enumerative) HasINV() bool {
	return e.combos() > 1<<uint(e.Capacity())
}

// EncodeGroup stores val (< 2^Capacity) into cell states, most-significant
// digit in the first cell, mirroring Table 2's layout.
func (e Enumerative) EncodeGroup(val uint64) []int {
	if val >= 1<<uint(e.Capacity()) {
		panic(fmt.Sprintf("encoding: value %d exceeds %d-bit capacity", val, e.Capacity()))
	}
	cells := make([]int, e.Cells)
	for i := e.Cells - 1; i >= 0; i-- {
		cells[i] = int(val % uint64(e.Levels))
		val /= uint64(e.Levels)
	}
	return cells
}

// DecodeGroup inverts EncodeGroup. inv reports the reserved all-highest
// combination; out-of-range (non-INV) indices decode normally modulo the
// capacity and flag ok=false.
func (e Enumerative) DecodeGroup(cells []int) (val uint64, inv, ok bool) {
	if len(cells) != e.Cells {
		panic("encoding: wrong group size")
	}
	allTop := true
	for _, c := range cells {
		if c < 0 || c >= e.Levels {
			panic(fmt.Sprintf("encoding: state %d out of range", c))
		}
		if c != e.Levels-1 {
			allTop = false
		}
		val = val*uint64(e.Levels) + uint64(c)
	}
	if allTop && e.HasINV() {
		return 0, true, true
	}
	if val >= 1<<uint(e.Capacity()) {
		return val % (1 << uint(e.Capacity())), false, false
	}
	return val, false, true
}

// BitsPerCell returns the information density of the group.
func (e Enumerative) BitsPerCell() float64 {
	return float64(e.Capacity()) / float64(e.Cells)
}

// Encode packs a bit vector into cell states group by group, padding the
// final partial group with zero bits.
func (e Enumerative) Encode(data bitvec.Vector) []int {
	cap := e.Capacity()
	groups := (data.Len() + cap - 1) / cap
	cells := make([]int, 0, groups*e.Cells)
	for g := 0; g < groups; g++ {
		var val uint64
		for b := 0; b < cap; b++ {
			i := g*cap + b
			if i < data.Len() {
				val |= uint64(data.Get(i)) << b
			}
		}
		cells = append(cells, e.EncodeGroup(val)...)
	}
	return cells
}

// Decode unpacks cell states into dataBits bits; INV groups decode as
// zeros and are counted.
func (e Enumerative) Decode(cells []int, dataBits int) (data bitvec.Vector, invGroups int) {
	if len(cells)%e.Cells != 0 {
		panic("encoding: cell count not a whole number of groups")
	}
	cap := e.Capacity()
	data = bitvec.New(dataBits)
	for g := 0; g < len(cells)/e.Cells; g++ {
		val, inv, _ := e.DecodeGroup(cells[g*e.Cells : (g+1)*e.Cells])
		if inv {
			invGroups++
			continue
		}
		for b := 0; b < cap; b++ {
			i := g*cap + b
			if i < dataBits {
				data.Set(i, uint(val>>b)&1)
			}
		}
	}
	return data, invGroups
}
