// Package encoding implements the information-encoding layers of the
// paper: the 3-ON-2 codec that stores three bits on two ternary cells
// (Table 2), the Gray code used for four-level cells, the 2-bits-per-cell
// mapping used by transient-error correction (Section 6.3), the smart
// (inversion/rotation) encoding that depopulates vulnerable states
// (Section 5.1), and an enumerative generalization to arbitrary
// non-power-of-two level counts (Section 8).
//
// State conventions. Three-level cells use state indices 0, 1, 2 for the
// paper's S1, S2, S4 (there is no S3). Four-level cells use 0..3 for
// S1..S4.
package encoding

import (
	"fmt"

	"repro/internal/bitvec"
)

// INV is the reserved ninth pair-state of 3-ON-2: both cells at the
// highest resistance [S4, S4]. Mark-and-spare uses it to flag a pair
// containing a worn-out cell (Section 6.4).
const INV = 8

// PairIndex folds two ternary cell states into the 0..8 pair index used
// throughout: 3·first + second. Index 8 (= [S4,S4]) is INV.
func PairIndex(c1, c2 int) int {
	if c1 < 0 || c1 > 2 || c2 < 0 || c2 > 2 {
		panic(fmt.Sprintf("encoding: bad ternary states (%d,%d)", c1, c2))
	}
	return 3*c1 + c2
}

// EncodePair maps three bits (0..7) onto two ternary cell states per
// Table 2: 000→[S1,S1] … 111→[S4,S2]. [S4,S4] is never produced.
func EncodePair(bits uint) (c1, c2 int) {
	if bits > 7 {
		panic(fmt.Sprintf("encoding: 3-ON-2 value %d out of range", bits))
	}
	return int(bits) / 3, int(bits) % 3
}

// DecodePair inverts EncodePair. inv reports the reserved [S4,S4] state;
// when inv is true, bits is meaningless.
func DecodePair(c1, c2 int) (bits uint, inv bool) {
	idx := PairIndex(c1, c2)
	if idx == INV {
		return 0, true
	}
	return uint(idx), false
}

// ThreeOnTwoCells returns the number of ternary cells holding dataBits
// bits under 3-ON-2 (two cells per three bits, rounded up to whole
// pairs). For the paper's 512-bit block this is 342 cells.
func ThreeOnTwoCells(dataBits int) int {
	pairs := (dataBits + 2) / 3
	return 2 * pairs
}

// EncodeThreeOnTwo encodes a bit vector into ternary cell states, three
// bits per pair, zero-padding the last partial triple.
func EncodeThreeOnTwo(data bitvec.Vector) []int {
	pairs := (data.Len() + 2) / 3
	cells := make([]int, 0, 2*pairs)
	for p := 0; p < pairs; p++ {
		var bits uint
		for b := 0; b < 3; b++ {
			i := 3*p + b
			if i < data.Len() {
				bits |= uint(data.Get(i)) << b
			}
		}
		c1, c2 := EncodePair(bits)
		cells = append(cells, c1, c2)
	}
	return cells
}

// DecodeThreeOnTwo decodes ternary cell states into dataBits bits. Pairs
// in the INV state decode as zero bits and are counted in invPairs; the
// wearout-tolerance layer is responsible for eliminating INV pairs before
// this step (Figure 9's symbol decode is the final stage).
func DecodeThreeOnTwo(cells []int, dataBits int) (data bitvec.Vector, invPairs int) {
	if len(cells)%2 != 0 {
		panic("encoding: odd cell count for 3-ON-2")
	}
	data = bitvec.New(dataBits)
	for p := 0; p < len(cells)/2; p++ {
		bits, inv := DecodePair(cells[2*p], cells[2*p+1])
		if inv {
			invPairs++
			continue
		}
		for b := 0; b < 3; b++ {
			i := 3*p + b
			if i < dataBits {
				data.Set(i, uint(bits>>b)&1)
			}
		}
	}
	return data, invPairs
}

// gray4 maps 4LC states S1..S4 to two bits so that adjacent states differ
// in exactly one bit: 00, 01, 11, 10. A drift error (always to the next
// state up) therefore manifests as a single bit error (Section 6.6).
var gray4 = [4]uint{0b00, 0b01, 0b11, 0b10}
var gray4Inv = [4]int{0: 0, 1: 1, 3: 2, 2: 3}

// Gray4Encode returns the 4LC state storing the two bits.
func Gray4Encode(bits uint) int {
	if bits > 3 {
		panic("encoding: Gray4Encode input out of range")
	}
	return gray4Inv[bits]
}

// Gray4Decode returns the two bits stored by a 4LC state.
func Gray4Decode(state int) uint {
	if state < 0 || state > 3 {
		panic("encoding: Gray4Decode state out of range")
	}
	return gray4[state]
}

// EncodeGray4 packs a bit vector two bits per four-level cell.
func EncodeGray4(data bitvec.Vector) []int {
	if data.Len()%2 != 0 {
		panic("encoding: Gray block must hold an even number of bits")
	}
	cells := make([]int, data.Len()/2)
	for i := range cells {
		bits := uint(data.Get(2*i)) | uint(data.Get(2*i+1))<<1
		cells[i] = Gray4Encode(bits)
	}
	return cells
}

// DecodeGray4 unpacks four-level cells into bits.
func DecodeGray4(cells []int) bitvec.Vector {
	data := bitvec.New(2 * len(cells))
	for i, s := range cells {
		bits := Gray4Decode(s)
		data.Set(2*i, bits&1)
		data.Set(2*i+1, (bits>>1)&1)
	}
	return data
}

// TECBits3 maps a ternary cell state to the 2-bit pattern used when
// constructing the transient-error-correction codeword (Section 6.3):
// S1=00, S2=01, S4=11. As in Gray coding, a drift error (S1→S2 or S2→S4)
// flips exactly one bit. This mapping does not change the stored cell
// states — only how the ECC logic interprets them.
func TECBits3(state int) uint {
	switch state {
	case 0:
		return 0b00
	case 1:
		return 0b01
	case 2:
		return 0b11
	}
	panic(fmt.Sprintf("encoding: bad ternary state %d", state))
}

// TECState3 inverts TECBits3 after error correction. The pattern 10 is
// not produced by any state; if correction yields it (possible only under
// miscorrection beyond the code's strength), ok is false.
func TECState3(bits uint) (state int, ok bool) {
	switch bits & 3 {
	case 0b00:
		return 0, true
	case 0b01:
		return 1, true
	case 0b11:
		return 2, true
	}
	return 0, false
}

// TECMessage3 builds the TEC codeword message from ternary cells: two
// bits per cell, LSB-first. For the paper's block (342 data + 12 spare
// cells) this is the 708-bit BCH-1 message.
func TECMessage3(cells []int) bitvec.Vector {
	msg := bitvec.New(2 * len(cells))
	for i, s := range cells {
		b := TECBits3(s)
		msg.Set(2*i, b&1)
		msg.Set(2*i+1, (b>>1)&1)
	}
	return msg
}

// CellsFromTECMessage3 converts a (corrected) TEC message back to ternary
// states. badPatterns counts 10-patterns, which indicate miscorrection;
// those cells are pinned to S4 so downstream INV detection stays sound.
func CellsFromTECMessage3(msg bitvec.Vector) (cells []int, badPatterns int) {
	if msg.Len()%2 != 0 {
		panic("encoding: TEC message must have even length")
	}
	cells = make([]int, msg.Len()/2)
	for i := range cells {
		bits := uint(msg.Get(2*i)) | uint(msg.Get(2*i+1))<<1
		s, ok := TECState3(bits)
		if !ok {
			badPatterns++
			s = 2
		}
		cells[i] = s
	}
	return cells, badPatterns
}
