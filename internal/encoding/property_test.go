package encoding

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// Property: every enumerative group code round-trips every value, never
// emits its INV combination for data, and its capacity respects the
// information-theoretic bound.
func TestEnumerativeUniversalProperty(t *testing.T) {
	f := func(levelsRaw, cellsRaw uint8, valRaw uint16) bool {
		levels := int(levelsRaw)%5 + 2 // 2..6
		cells := int(cellsRaw)%4 + 1   // 1..4
		e := Enumerative{Levels: levels, Cells: cells}
		cap := e.Capacity()
		if cap < 1 {
			return true // 2-level 1-cell edge: capacity 1; never < 1
		}
		// Capacity bound: 2^cap <= levels^cells.
		space := 1
		for i := 0; i < cells; i++ {
			space *= levels
		}
		if 1<<uint(cap) > space {
			return false
		}
		val := uint64(valRaw) % (1 << uint(cap))
		states := e.EncodeGroup(val)
		if e.HasINV() {
			allTop := true
			for _, s := range states {
				if s != levels-1 {
					allTop = false
				}
			}
			if allTop {
				return false // data must never collide with INV
			}
		}
		got, inv, ok := e.DecodeGroup(states)
		return !inv && ok && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the full 3-ON-2 block pipeline is the identity for arbitrary
// data lengths, and the TEC bit mapping round-trips through correction.
func TestThreeOnTwoPipelineProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%512 + 1
		r := rng.New(seed)
		data := bitvec.New(n)
		for i := 0; i < n; i++ {
			data.Set(i, uint(r.Uint64())&1)
		}
		cells := EncodeThreeOnTwo(data)
		msg := TECMessage3(cells)
		back, bad := CellsFromTECMessage3(msg)
		if bad != 0 {
			return false
		}
		got, inv := DecodeThreeOnTwo(back, n)
		return inv == 0 && got.Equal(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-state drift on any cell flips exactly one TEC bit —
// the invariant that lets BCH-1 cover drift errors.
func TestDriftIsOneTECBitProperty(t *testing.T) {
	f := func(stateRaw uint8) bool {
		s := int(stateRaw) % 2 // S1 or S2 can drift up
		before := TECBits3(s)
		after := TECBits3(s + 1)
		diff := before ^ after
		return diff != 0 && diff&(diff-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
