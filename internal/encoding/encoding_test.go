package encoding

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func TestTable2Exactly(t *testing.T) {
	// Table 2 of the paper, states written as S1=0, S2=1, S4=2.
	table := []struct {
		c1, c2 int
		bits   uint
	}{
		{0, 0, 0b000}, {0, 1, 0b001}, {0, 2, 0b010},
		{1, 0, 0b011}, {1, 1, 0b100}, {1, 2, 0b101},
		{2, 0, 0b110}, {2, 1, 0b111},
	}
	for _, row := range table {
		c1, c2 := EncodePair(row.bits)
		if c1 != row.c1 || c2 != row.c2 {
			t.Errorf("EncodePair(%03b) = (%d,%d), want (%d,%d)", row.bits, c1, c2, row.c1, row.c2)
		}
		bits, inv := DecodePair(row.c1, row.c2)
		if inv || bits != row.bits {
			t.Errorf("DecodePair(%d,%d) = %03b inv=%v", row.c1, row.c2, bits, inv)
		}
	}
	// The ninth state [S4,S4] is INV.
	if _, inv := DecodePair(2, 2); !inv {
		t.Error("[S4,S4] not reported as INV")
	}
	if PairIndex(2, 2) != INV {
		t.Error("PairIndex(2,2) != INV")
	}
}

func TestEncodePairNeverProducesINV(t *testing.T) {
	for bits := uint(0); bits < 8; bits++ {
		c1, c2 := EncodePair(bits)
		if c1 == 2 && c2 == 2 {
			t.Fatalf("EncodePair(%03b) produced INV", bits)
		}
	}
}

func TestPairPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"encode": func() { EncodePair(8) },
		"index":  func() { PairIndex(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestThreeOnTwoCellCount(t *testing.T) {
	// Section 6.2: "A 64B data block is stored in 342 cells."
	if got := ThreeOnTwoCells(512); got != 342 {
		t.Fatalf("cells for 512 bits = %d, want 342", got)
	}
	if got := ThreeOnTwoCells(3); got != 2 {
		t.Fatalf("cells for 3 bits = %d", got)
	}
}

func randBits(r *rng.Rand, n int) bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, uint(r.Uint64())&1)
	}
	return v
}

func TestThreeOnTwoRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 3, 5, 512} {
		for trial := 0; trial < 10; trial++ {
			data := randBits(r, n)
			cells := EncodeThreeOnTwo(data)
			if len(cells) != ThreeOnTwoCells(n) {
				t.Fatalf("n=%d: %d cells", n, len(cells))
			}
			got, inv := DecodeThreeOnTwo(cells, n)
			if inv != 0 {
				t.Fatalf("n=%d: spurious INV", n)
			}
			if !got.Equal(data) {
				t.Fatalf("n=%d: round trip failed", n)
			}
		}
	}
}

func TestDecodeThreeOnTwoCountsINV(t *testing.T) {
	data := randBits(rng.New(2), 512)
	cells := EncodeThreeOnTwo(data)
	cells[0], cells[1] = 2, 2
	cells[10], cells[11] = 2, 2
	_, inv := DecodeThreeOnTwo(cells, 512)
	if inv != 2 {
		t.Fatalf("inv = %d, want 2", inv)
	}
}

func TestGray4AdjacencyProperty(t *testing.T) {
	// A drift error moves a cell exactly one state up; Gray coding must
	// turn that into exactly one bit flip (Section 6.6).
	for s := 0; s < 3; s++ {
		a, b := Gray4Decode(s), Gray4Decode(s+1)
		diff := a ^ b
		if diff == 0 || diff&(diff-1) != 0 {
			t.Errorf("states %d,%d differ in %02b", s, s+1, diff)
		}
	}
}

func TestGray4RoundTrip(t *testing.T) {
	for bits := uint(0); bits < 4; bits++ {
		if got := Gray4Decode(Gray4Encode(bits)); got != bits {
			t.Errorf("Gray round trip %02b -> %02b", bits, got)
		}
	}
	r := rng.New(3)
	data := randBits(r, 512)
	cells := EncodeGray4(data)
	if len(cells) != 256 {
		t.Fatalf("Gray cells = %d", len(cells))
	}
	if !DecodeGray4(cells).Equal(data) {
		t.Fatal("Gray block round trip failed")
	}
}

func TestTECBits3Adjacency(t *testing.T) {
	// S1=00, S2=01, S4=11: each single-state drift is one bit flip.
	pairs := [][2]int{{0, 1}, {1, 2}}
	for _, p := range pairs {
		diff := TECBits3(p[0]) ^ TECBits3(p[1])
		if diff == 0 || diff&(diff-1) != 0 {
			t.Errorf("states %v differ in %02b", p, diff)
		}
	}
}

func TestTECMessageRoundTrip(t *testing.T) {
	r := rng.New(4)
	cells := make([]int, 354)
	for i := range cells {
		cells[i] = r.Intn(3)
	}
	msg := TECMessage3(cells)
	if msg.Len() != 708 {
		t.Fatalf("TEC message = %d bits, want 708 (Section 6.3)", msg.Len())
	}
	back, bad := CellsFromTECMessage3(msg)
	if bad != 0 {
		t.Fatalf("bad patterns = %d", bad)
	}
	for i := range cells {
		if back[i] != cells[i] {
			t.Fatalf("cell %d: %d != %d", i, back[i], cells[i])
		}
	}
}

func TestTECState3RejectsInvalidPattern(t *testing.T) {
	if _, ok := TECState3(0b10); ok {
		t.Fatal("pattern 10 accepted")
	}
	msg := bitvec.New(2)
	msg.Set(1, 1) // 10 pattern
	cells, bad := CellsFromTECMessage3(msg)
	if bad != 1 || cells[0] != 2 {
		t.Fatalf("bad pattern handling: cells=%v bad=%d", cells, bad)
	}
}

func TestSmartEncodeReducesVulnerable(t *testing.T) {
	r := rng.New(5)
	// Adversarial data: all cells in vulnerable states.
	cells := make([]int, 256)
	for i := range cells {
		cells[i] = 1 + r.Intn(2) // S2 or S3
	}
	out, flags := SmartEncode4(cells)
	before, after := 0, 0
	for i := range cells {
		if vulnerable4(cells[i]) {
			before++
		}
		if vulnerable4(out[i]) {
			after++
		}
	}
	if after >= before {
		t.Fatalf("smart encoding did not help: %d -> %d", before, after)
	}
	back := SmartDecode4(out, flags)
	for i := range cells {
		if back[i] != cells[i] {
			t.Fatalf("smart round trip failed at %d", i)
		}
	}
}

func TestSmartEncodeRandomDataSkew(t *testing.T) {
	// On uniform random data the rotation trick still shifts occupancy
	// away from S2/S3 on average.
	r := rng.New(6)
	total := make([]float64, 4)
	const blocks = 200
	for b := 0; b < blocks; b++ {
		cells := make([]int, 256)
		for i := range cells {
			cells[i] = r.Intn(4)
		}
		out, _ := SmartEncode4(cells)
		h := StateHistogram(out, 4)
		for i := range total {
			total[i] += h[i] / blocks
		}
	}
	vuln := total[1] + total[2]
	if vuln >= 0.5 {
		t.Fatalf("vulnerable fraction %v not reduced below the uniform 0.5", vuln)
	}
}

func TestSmartRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%256 + 1
		r := rng.New(seed)
		cells := make([]int, n)
		for i := range cells {
			cells[i] = r.Intn(4)
		}
		out, flags := SmartEncode4(cells)
		back := SmartDecode4(out, flags)
		for i := range cells {
			if back[i] != cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerativeMatchesThreeOnTwo(t *testing.T) {
	e := Enumerative{Levels: 3, Cells: 2}
	if e.Capacity() != 3 {
		t.Fatalf("capacity = %d", e.Capacity())
	}
	if !e.HasINV() {
		t.Fatal("3-ON-2 should reserve INV")
	}
	for bits := uint64(0); bits < 8; bits++ {
		cells := e.EncodeGroup(bits)
		c1, c2 := EncodePair(uint(bits))
		if cells[0] != c1 || cells[1] != c2 {
			t.Errorf("enumerative(%d) = %v, 3-ON-2 = (%d,%d)", bits, cells, c1, c2)
		}
	}
	if _, inv, _ := e.DecodeGroup([]int{2, 2}); !inv {
		t.Error("enumerative INV not detected")
	}
}

func TestEnumerativeFiveAndSixLevels(t *testing.T) {
	// Section 8: five- or six-level cells via the same machinery.
	cases := []struct {
		e        Enumerative
		capacity int
	}{
		{Enumerative{5, 3}, 6},  // 125 >= 64: 2 bits/cell
		{Enumerative{6, 5}, 12}, // 7776 >= 4096: 2.4 bits/cell
		{Enumerative{3, 2}, 3},
	}
	for _, c := range cases {
		if got := c.e.Capacity(); got != c.capacity {
			t.Errorf("%+v capacity = %d, want %d", c.e, got, c.capacity)
		}
		for trial := uint64(0); trial < 1<<uint(c.capacity); trial += 7 {
			cells := c.e.EncodeGroup(trial)
			val, inv, ok := c.e.DecodeGroup(cells)
			if inv || !ok || val != trial {
				t.Fatalf("%+v: round trip of %d failed (%d, %v, %v)", c.e, trial, val, inv, ok)
			}
		}
	}
}

func TestEnumerativeBlockRoundTrip(t *testing.T) {
	r := rng.New(7)
	for _, e := range []Enumerative{{3, 2}, {5, 3}, {6, 5}} {
		data := randBits(r, 512)
		cells := e.Encode(data)
		got, inv := e.Decode(cells, 512)
		if inv != 0 || !got.Equal(data) {
			t.Fatalf("%+v block round trip failed", e)
		}
	}
}

func TestEnumerativePanics(t *testing.T) {
	e := Enumerative{3, 2}
	for name, fn := range map[string]func(){
		"value":  func() { e.EncodeGroup(8) },
		"size":   func() { e.DecodeGroup([]int{1}) },
		"state":  func() { e.DecodeGroup([]int{1, 5}) },
		"params": func() { Enumerative{1, 1}.Capacity() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkEncodeThreeOnTwo(b *testing.B) {
	data := randBits(rng.New(1), 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeThreeOnTwo(data)
	}
}

func BenchmarkDecodeThreeOnTwo(b *testing.B) {
	data := randBits(rng.New(1), 512)
	cells := EncodeThreeOnTwo(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DecodeThreeOnTwo(cells, 512)
	}
}

func BenchmarkSmartEncode4(b *testing.B) {
	r := rng.New(1)
	cells := make([]int, 256)
	for i := range cells {
		cells[i] = r.Intn(4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SmartEncode4(cells)
	}
}
