package pcmarray

import (
	"testing"

	"repro/internal/levels"
	"repro/internal/wearout"
)

func newTestArray(t *testing.T, m levels.Mapping, n int) *Array {
	t.Helper()
	opt := DefaultOptions(1)
	opt.EnduranceMean = 0 // disable wearout unless a test enables it
	return New(m, n, opt)
}

func TestWriteSenseRoundTrip(t *testing.T) {
	for _, m := range []levels.Mapping{levels.FourLCNaive(), levels.ThreeLCNaive()} {
		a := newTestArray(t, m, 1000)
		for i := 0; i < a.Len(); i++ {
			want := i % m.Levels()
			if !a.Write(i, want) {
				t.Fatalf("%s: write failed", m.Name)
			}
			if got := a.Sense(i); got != want {
				t.Fatalf("%s: cell %d sensed %d, want %d", m.Name, i, got, want)
			}
		}
	}
}

func TestUnwrittenSensesTop(t *testing.T) {
	a := newTestArray(t, levels.ThreeLCNaive(), 4)
	if got := a.Sense(0); got != 2 {
		t.Fatalf("fresh cell sensed %d, want top state", got)
	}
}

func TestDriftCausesErrorsOverTime(t *testing.T) {
	// Program many 4LC cells to S3 and age the array: a visible fraction
	// must have drifted into S4 after a day (Figure 3's regime).
	m := levels.FourLCNaive()
	a := newTestArray(t, m, 200000)
	for i := 0; i < a.Len(); i++ {
		a.Write(i, 2) // S3
	}
	errAt := func() float64 {
		n := 0
		for i := 0; i < a.Len(); i++ {
			if a.Sense(i) != 2 {
				n++
			}
		}
		return float64(n) / float64(a.Len())
	}
	immediately := errAt()
	a.Advance(86400)
	afterDay := errAt()
	if immediately != 0 {
		t.Fatalf("errors immediately after write: %v", immediately)
	}
	if afterDay < 0.01 {
		t.Fatalf("S3 error rate after a day = %v, expected noticeable drift", afterDay)
	}
	// Drift only increases resistance: every errored cell must read S4.
	for i := 0; i < a.Len(); i++ {
		if s := a.Sense(i); s != 2 && s != 3 {
			t.Fatalf("cell %d drifted downward to %d", i, s)
		}
	}
}

func TestThreeLCDriftFarSlower(t *testing.T) {
	count := func(m levels.Mapping, state int, dt float64) float64 {
		a := newTestArray(t, m, 100000)
		for i := 0; i < a.Len(); i++ {
			a.Write(i, state)
		}
		a.Advance(dt)
		n := 0
		for i := 0; i < a.Len(); i++ {
			if a.Sense(i) != state {
				n++
			}
		}
		return float64(n) / float64(a.Len())
	}
	day := 86400.0
	four := count(levels.FourLCNaive(), 2, day)  // S3 in 4LC
	three := count(levels.ThreeLCNaive(), 1, day) // S2 in 3LC
	if three > 0 && four/three < 100 {
		t.Fatalf("3LC error rate %v not orders below 4LC %v", three, four)
	}
	if four < 0.01 {
		t.Fatalf("4LC S3 day error rate suspiciously low: %v", four)
	}
}

func TestRewriteResetsDriftClock(t *testing.T) {
	m := levels.FourLCNaive()
	a := newTestArray(t, m, 50000)
	for i := 0; i < a.Len(); i++ {
		a.Write(i, 2)
	}
	a.Advance(86400)
	// Refresh: rewrite everything.
	for i := 0; i < a.Len(); i++ {
		a.Write(i, 2)
	}
	n := 0
	for i := 0; i < a.Len(); i++ {
		if a.Sense(i) != 2 {
			n++
		}
	}
	if n != 0 {
		t.Fatalf("%d cells err immediately after rewrite", n)
	}
}

func TestWearoutEventuallyKillsCells(t *testing.T) {
	opt := DefaultOptions(2)
	opt.EnduranceMean = 100
	opt.EnduranceSigma = 0.2
	a := New(levels.ThreeLCNaive(), 50, opt)
	dead := 0
	for cycle := 0; cycle < 1000; cycle++ {
		for i := 0; i < a.Len(); i++ {
			if a.Mode(i) == wearout.Healthy {
				a.Write(i, cycle%3)
			}
		}
	}
	for i := 0; i < a.Len(); i++ {
		if a.Mode(i) != wearout.Healthy {
			dead++
		}
	}
	if dead < a.Len()/2 {
		t.Fatalf("only %d/%d cells wore out after 10x endurance", dead, a.Len())
	}
}

func TestStuckResetBehaviour(t *testing.T) {
	a := newTestArray(t, levels.ThreeLCNaive(), 4)
	a.InjectFailure(0, wearout.StuckReset)
	if a.Write(0, 1) {
		t.Fatal("write to non-top state verified on a stuck-reset cell")
	}
	if got := a.Sense(0); got != 2 {
		t.Fatalf("stuck-reset cell sensed %d", got)
	}
	if !a.Write(0, 2) {
		t.Fatal("writing the top state to a stuck-reset cell should verify")
	}
	a.Advance(1e9)
	if got := a.Sense(0); got != 2 {
		t.Fatal("stuck cells must not drift across thresholds")
	}
}

func TestStuckSetBehaviour(t *testing.T) {
	a := newTestArray(t, levels.ThreeLCNaive(), 4)
	a.InjectFailure(1, wearout.StuckSet)
	if a.Write(1, 2) {
		t.Fatal("stuck-set cell verified at top state")
	}
	if !a.Write(1, 0) {
		t.Fatal("stuck-set cell should program to lower states")
	}
	if got := a.Sense(1); got != 0 {
		t.Fatalf("stuck-set cell sensed %d after writing 0", got)
	}
}

func TestReviveStuckSet(t *testing.T) {
	opt := DefaultOptions(3)
	opt.EnduranceMean = 0
	opt.ReviveProbability = 1
	a := New(levels.ThreeLCNaive(), 4, opt)
	a.InjectFailure(2, wearout.StuckSet)
	if !a.Revive(2) {
		t.Fatal("revival failed at probability 1")
	}
	if a.Mode(2) != wearout.StuckSetRevived {
		t.Fatal("mode not updated")
	}
	if got := a.Sense(2); got != 2 {
		t.Fatalf("revived cell sensed %d", got)
	}
	// Reviving a healthy cell is a no-op.
	if a.Revive(0) {
		t.Fatal("revived a healthy cell")
	}
}

func TestReviveCanFail(t *testing.T) {
	opt := DefaultOptions(4)
	opt.EnduranceMean = 0
	opt.ReviveProbability = 0
	a := New(levels.ThreeLCNaive(), 4, opt)
	a.InjectFailure(0, wearout.StuckSet)
	if a.Revive(0) {
		t.Fatal("revival succeeded at probability 0")
	}
	if a.Mode(0) != wearout.StuckSet {
		t.Fatal("mode changed on failed revival")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		a := New(levels.FourLCNaive(), 1000, DefaultOptions(77))
		for i := 0; i < a.Len(); i++ {
			a.Write(i, i%4)
		}
		a.Advance(3.2e6)
		out := make([]int, a.Len())
		for i := range out {
			out[i] = a.Sense(i)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("divergence at cell %d", i)
		}
	}
}

func TestOperationCounters(t *testing.T) {
	a := newTestArray(t, levels.ThreeLCNaive(), 10)
	a.Write(0, 1)
	a.Write(1, 2)
	a.Sense(0)
	if a.Writes != 2 || a.SenseOps != 1 {
		t.Fatalf("counters: writes=%d senses=%d", a.Writes, a.SenseOps)
	}
}

func TestPanics(t *testing.T) {
	a := newTestArray(t, levels.ThreeLCNaive(), 2)
	for name, fn := range map[string]func(){
		"badState":  func() { a.Write(0, 5) },
		"negAdv":    func() { a.Advance(-1) },
		"zeroCells": func() { New(levels.ThreeLCNaive(), 0, DefaultOptions(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkWriteSense(b *testing.B) {
	a := New(levels.ThreeLCNaive(), 4096, DefaultOptions(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx := i & 4095
		a.Write(idx, i%3)
		a.Sense(idx)
	}
}
