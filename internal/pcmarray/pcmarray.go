// Package pcmarray simulates a physical array of multilevel phase-change
// memory cells at the resistance level: iterative write-and-verify
// programming (modeled by its acceptance distribution), per-cell drift
// exponents, sensing against the mapping's thresholds at an arbitrary
// simulation time, wear counting with lognormally distributed endurance,
// and the stuck-reset/stuck-set failure modes with reverse-current
// revival (Sections 2 and 6.4 of the paper).
//
// The array is the substrate under internal/core's architecture
// pipelines and the examples; everything above it sees only written and
// sensed state indices.
package pcmarray

import (
	"fmt"
	"math"

	"repro/internal/drift"
	"repro/internal/levels"
	"repro/internal/rng"
	"repro/internal/wearout"
)

// Options configures an Array.
type Options struct {
	// Seed drives all stochastic behaviour; a given seed reproduces the
	// exact same cell lifetimes and drift trajectories.
	Seed uint64
	// EnduranceMean is the mean write endurance in cycles. The paper
	// quotes 1E5 for MLC-PCM vs 1E8 for SLC (Section 6.4). Zero disables
	// wearout entirely.
	EnduranceMean float64
	// EnduranceSigma is the lognormal sigma of per-cell endurance
	// (process variation); 0.3 is a reasonable default.
	EnduranceSigma float64
	// ReviveProbability is the chance a stuck-set cell can be forced to
	// the top state by reverse current (Section 6.4 after Goux et al.).
	ReviveProbability float64
}

// DefaultOptions returns MLC endurance of 1E5 cycles and 95% revival.
func DefaultOptions(seed uint64) Options {
	return Options{
		Seed:              seed,
		EnduranceMean:     1e5,
		EnduranceSigma:    0.3,
		ReviveProbability: 0.95,
	}
}

// cell is the physical state of one PCM cell.
type cell struct {
	logR0     float64 // written log10 resistance
	alpha     float64 // drift exponent
	alpha2    float64 // post-switch exponent (3LC rate switch)
	writeTime float64 // simulation time of the accepted write, seconds
	state     int     // state accepted by write-and-verify
	written   bool
	wear      int
	endurance int
	mode      wearout.FailureMode
}

// Array is a drift-accurate PCM cell array under a level mapping.
type Array struct {
	mapping levels.Mapping
	specs   []drift.StateSpec
	cells   []cell
	r       *rng.Rand
	now     float64
	opt     Options

	// Writes and SenseOps count device operations for energy accounting.
	Writes   int64
	SenseOps int64
}

// New allocates an array of n cells using the mapping's drift behaviour.
func New(mapping levels.Mapping, n int, opt Options) *Array {
	if err := mapping.Validate(); err != nil {
		panic(fmt.Sprintf("pcmarray: %v", err))
	}
	if n <= 0 {
		panic("pcmarray: non-positive cell count")
	}
	a := &Array{
		mapping: mapping,
		specs:   mapping.Specs(),
		cells:   make([]cell, n),
		r:       rng.New(opt.Seed),
		opt:     opt,
	}
	for i := range a.cells {
		a.cells[i].endurance = a.sampleEndurance()
		a.cells[i].mode = wearout.Healthy
	}
	return a
}

func (a *Array) sampleEndurance() int {
	if a.opt.EnduranceMean <= 0 {
		return math.MaxInt32
	}
	// Lognormal around the mean: exp(N(ln(mean) - σ²/2, σ)).
	s := a.opt.EnduranceSigma
	mu := math.Log(a.opt.EnduranceMean) - s*s/2
	v := math.Exp(a.r.Normal(mu, s))
	if v < 1 {
		v = 1
	}
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}

// Len returns the cell count.
func (a *Array) Len() int { return len(a.cells) }

// Levels returns the number of states per cell.
func (a *Array) Levels() int { return a.mapping.Levels() }

// Mapping returns the level mapping in force.
func (a *Array) Mapping() levels.Mapping { return a.mapping }

// Now returns the current simulation time in seconds.
func (a *Array) Now() float64 { return a.now }

// Advance moves the simulation clock forward by dt seconds, aging every
// written cell's resistance (drift is evaluated lazily at sense time, so
// this is O(1)).
func (a *Array) Advance(dt float64) {
	if dt < 0 {
		panic("pcmarray: negative time step")
	}
	a.now += dt
}

// topState returns the highest state index.
func (a *Array) topState() int { return a.mapping.Levels() - 1 }

// Write programs cell i to the given state through write-and-verify.
// It returns ok=false when the cell has worn out and cannot be verified
// at the target state; the caller (the architecture layer) is then
// responsible for wearout tolerance. Writing a worn cell to a state it
// happens to be stuck at still verifies, as in real ECP/mark-and-spare
// flows.
func (a *Array) Write(i int, state int) (ok bool) {
	c := &a.cells[i]
	if state < 0 || state > a.topState() {
		panic(fmt.Sprintf("pcmarray: state %d out of range", state))
	}
	a.Writes++
	if c.mode == wearout.Healthy {
		c.wear++
		if c.wear > c.endurance {
			// The cell dies on this write: half stuck-reset, half
			// stuck-set (Section 6.4's two failure modes).
			if a.r.Float64() < 0.5 {
				c.mode = wearout.StuckReset
			} else {
				c.mode = wearout.StuckSet
			}
		}
	}
	switch c.mode {
	case wearout.StuckReset, wearout.StuckSetRevived:
		// Pinned at top state: the write verifies only if that was the
		// target.
		c.state = a.topState()
		c.written = true
		c.writeTime = a.now
		c.logR0 = a.specs[a.topState()].Nominal // stuck cells do not drift across thresholds
		c.alpha, c.alpha2 = 0, 0
		return state == a.topState()
	case wearout.StuckSet:
		if state == a.topState() {
			// Cannot RESET to the highest state.
			return false
		}
		// Stuck-set cells still program to lower states (the SET path
		// works); fall through to a normal write.
	}
	spec := a.specs[state]
	c.state = state
	c.written = true
	c.writeTime = a.now
	c.logR0 = spec.SampleWrite(a.r)
	c.alpha = a.r.Normal(spec.Alpha.Mu, spec.Alpha.Sigma)
	if spec.Switch != nil {
		c.alpha2 = spec.SampleAlpha2(a.r, c.alpha)
	} else {
		c.alpha2 = 0
	}
	return true
}

// Sense reads cell i's state at the current simulation time, applying
// drift since the last write. Unwritten cells sense as the top state
// (fully amorphous as fabricated).
func (a *Array) Sense(i int) int {
	c := &a.cells[i]
	a.SenseOps++
	if !c.written {
		return a.topState()
	}
	if s, pinned := c.mode.Pinned(a.topState()); pinned {
		return s
	}
	elapsed := a.now - c.writeTime
	if elapsed < drift.T0 {
		elapsed = drift.T0
	}
	spec := a.specs[c.state]
	logR := spec.LogRAt(c.logR0, c.alpha, c.alpha2, elapsed)
	return a.mapping.State(logR)
}

// LogR returns the analog log-resistance of cell i at the current time
// (used by analog decoders such as permutation coding and by tests).
func (a *Array) LogR(i int) float64 {
	c := &a.cells[i]
	if !c.written {
		return a.specs[a.topState()].Nominal
	}
	if _, pinned := c.mode.Pinned(a.topState()); pinned {
		return a.specs[a.topState()].Nominal
	}
	elapsed := a.now - c.writeTime
	if elapsed < drift.T0 {
		elapsed = drift.T0
	}
	spec := a.specs[c.state]
	return spec.LogRAt(c.logR0, c.alpha, c.alpha2, elapsed)
}

// Mode returns cell i's failure mode.
func (a *Array) Mode(i int) wearout.FailureMode { return a.cells[i].mode }

// Wear returns cell i's accumulated write count.
func (a *Array) Wear(i int) int { return a.cells[i].wear }

// InjectFailure forces a failure mode onto cell i (for fault-injection
// tests and experiments).
func (a *Array) InjectFailure(i int, mode wearout.FailureMode) {
	a.cells[i].mode = mode
	if s, pinned := mode.Pinned(a.topState()); pinned {
		a.cells[i].state = s
		a.cells[i].written = true
	}
}

// SetEndurance overrides cell i's endurance budget (fault injection).
func (a *Array) SetEndurance(i, cycles int) { a.cells[i].endurance = cycles }

// Revive attempts to force a stuck-set cell into the top state by a
// reverse current pulse. It reports success; on success the cell behaves
// as permanently top-state.
func (a *Array) Revive(i int) bool {
	c := &a.cells[i]
	if c.mode != wearout.StuckSet {
		return false
	}
	if a.r.Float64() < a.opt.ReviveProbability {
		c.mode = wearout.StuckSetRevived
		c.state = a.topState()
		c.written = true
		return true
	}
	return false
}
