package wearlevel

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

func noWear(seed uint64) pcmarray.Options {
	o := pcmarray.DefaultOptions(seed)
	o.EnduranceMean = 0
	return o
}

func newLeveled(t *testing.T, logicalBlocks, psi int, seed uint64) *Device {
	t.Helper()
	inner := core.NewThreeLC(logicalBlocks+1, core.ThreeLCConfig{Array: noWear(seed)})
	return Wrap(inner, psi)
}

func TestMappingIsBijection(t *testing.T) {
	// At every step of a full double rotation, logical lines map to
	// distinct physical lines, none of them the gap.
	sg := NewStartGap(7)
	steps := 2 * 7 * 8
	for step := 0; step < steps; step++ {
		seen := map[int]bool{}
		for la := 0; la < 7; la++ {
			pa := sg.Map(la)
			if pa < 0 || pa > 7 {
				t.Fatalf("step %d: PA %d out of range", step, pa)
			}
			if pa == sg.Gap() {
				t.Fatalf("step %d: logical %d mapped onto the gap", step, la)
			}
			if seen[pa] {
				t.Fatalf("step %d: collision at PA %d", step, pa)
			}
			seen[pa] = true
		}
		sg.MoveGap()
	}
}

func TestMoveGapCopySemantics(t *testing.T) {
	// Track a shadow array through the prescribed copies and verify the
	// mapping always points at the right content.
	const n = 5
	sg := NewStartGap(n)
	phys := make([]int, n+1)
	for la := 0; la < n; la++ {
		phys[sg.Map(la)] = 100 + la
	}
	for step := 0; step < 4*(n+1)*n; step++ {
		from, to := sg.MoveGap()
		phys[to] = phys[from]
		for la := 0; la < n; la++ {
			if phys[sg.Map(la)] != 100+la {
				t.Fatalf("step %d: logical %d reads %d", step, la, phys[sg.Map(la)])
			}
		}
	}
}

func TestMappingBijectionProperty(t *testing.T) {
	f := func(nRaw uint8, moves uint16) bool {
		n := int(nRaw)%20 + 1
		sg := NewStartGap(n)
		for i := 0; i < int(moves)%200; i++ {
			sg.MoveGap()
		}
		seen := map[int]bool{}
		for la := 0; la < n; la++ {
			pa := sg.Map(la)
			if pa == sg.Gap() || seen[pa] {
				return false
			}
			seen[pa] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDataSurvivesRotation(t *testing.T) {
	// ψ=1 forces a gap move on every write: the most movement-intensive
	// schedule. Data must stay correct throughout several full rotations.
	d := newLeveled(t, 6, 1, 1)
	mirror := map[int][]byte{}
	for i := 0; i < 200; i++ {
		b := i % d.Blocks()
		data := make([]byte, core.BlockBytes)
		copy(data, fmt.Sprintf("round %d block %d", i/d.Blocks(), b))
		if err := d.Write(b, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		mirror[b] = data
		for lb, want := range mirror {
			got, err := d.Read(lb)
			if err != nil {
				t.Fatalf("read %d after write %d: %v", lb, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("block %d corrupted after write %d", lb, i)
			}
		}
	}
}

func TestLevelingSpreadsWear(t *testing.T) {
	// Hammer one logical block; leveling must spread physical writes
	// across many physical lines.
	d := newLeveled(t, 8, 2, 2)
	data := make([]byte, core.BlockBytes)
	if err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		data[0] = byte(i)
		if err := d.Write(0, data); err != nil {
			t.Fatal(err)
		}
	}
	// Count physical lines that absorbed writes, via first-cell wear.
	arr := d.Array()
	cellsPerBlock := d.CellsPerBlock() - 0 // inner geometry
	touched := 0
	maxWear := 0
	for pb := 0; pb < 9; pb++ {
		w := arr.Wear(pb * cellsPerBlock)
		if w > 0 {
			touched++
		}
		if w > maxWear {
			maxWear = w
		}
	}
	if touched < 8 {
		t.Fatalf("only %d/9 physical lines touched under a hot-block workload", touched)
	}
	// Without leveling a single line would take all ~400 writes; with
	// ψ=2 the hottest line must carry well under half.
	if maxWear > 250 {
		t.Fatalf("hottest line wear %d; leveling ineffective", maxWear)
	}
}

func TestScrubAndDensity(t *testing.T) {
	d := newLeveled(t, 4, 3, 3)
	data := make([]byte, core.BlockBytes)
	if err := d.Write(2, data); err != nil {
		t.Fatal(err)
	}
	if err := d.Scrub(2); err != nil {
		t.Fatal(err)
	}
	inner := core.NewThreeLC(5, core.ThreeLCConfig{Array: noWear(4)})
	if d.Density() >= inner.Density() {
		t.Error("leveled density should pay the spare-line tax")
	}
	if d.Name() == inner.Name() {
		t.Error("name should mention leveling")
	}
}

func TestBoundsChecks(t *testing.T) {
	d := newLeveled(t, 4, 3, 5)
	if err := d.Write(4, make([]byte, core.BlockBytes)); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := d.Read(-1); err == nil {
		t.Error("negative read accepted")
	}
	if err := d.Scrub(99); err == nil {
		t.Error("out-of-range scrub accepted")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"smallInner": func() {
			Wrap(core.NewThreeLC(1, core.ThreeLCConfig{Array: noWear(6)}), 1)
		},
		"badPsi": func() {
			Wrap(core.NewThreeLC(4, core.ThreeLCConfig{Array: noWear(6)}), 0)
		},
		"zeroLines": func() { NewStartGap(0) },
		"badMap":    func() { NewStartGap(4).Map(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
