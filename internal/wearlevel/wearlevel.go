// Package wearlevel implements Start-Gap wear leveling (Qureshi et al.,
// MICRO'09 — the wear-leveling scheme the paper's related work builds
// on) as a transparent wrapper around any core.Arch. MLC-PCM endures
// only ~1E5 writes per cell (Section 6.4), so a hot block would die in
// minutes without leveling; Start-Gap rotates the logical-to-physical
// mapping by one line every ψ writes using a single spare line, spreading
// any write pattern across the device with O(1) state.
package wearlevel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

// StartGap is the address-rotation state machine: n logical lines over
// n+1 physical lines, a moving gap, and a rotating start offset.
type StartGap struct {
	n     int
	start int
	gap   int // physical position of the unused (gap) line, in [0, n]
}

// NewStartGap creates the mapping for n logical lines.
func NewStartGap(n int) *StartGap {
	if n < 1 {
		panic("wearlevel: need at least one line")
	}
	return &StartGap{n: n, gap: n}
}

// Map translates a logical line to its current physical line.
func (s *StartGap) Map(logical int) int {
	if logical < 0 || logical >= s.n {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", logical, s.n))
	}
	pa := (logical + s.start) % s.n
	if pa >= s.gap {
		pa++
	}
	return pa
}

// Gap returns the current physical gap position.
func (s *StartGap) Gap() int { return s.gap }

// MoveGap advances the rotation by one step and returns the copy the
// caller must perform: physical line `from` moves into `to` (the old gap
// position). When the gap wraps from 0 back to n, the start offset
// advances and the spare line's content rotates into line 0.
func (s *StartGap) MoveGap() (from, to int) {
	if s.gap == 0 {
		from, to = s.n, 0
		s.gap = s.n
		s.start = (s.start + 1) % s.n
		return from, to
	}
	to = s.gap
	s.gap--
	from = s.gap
	return from, to
}

// Device wraps an inner architecture (with one spare block) behind
// Start-Gap leveling. It implements core.Arch for its logical capacity.
type Device struct {
	inner core.Arch
	sg    *StartGap
	// Psi is the gap-movement period in writes (the paper's ψ=100 trades
	// <1% overhead for near-perfect leveling; tests use smaller values).
	Psi    int
	writes int
}

// Wrap levels an inner device, reserving its last block as the gap line.
// The wrapped device exposes inner.Blocks()-1 logical blocks.
func Wrap(inner core.Arch, psi int) *Device {
	if inner.Blocks() < 2 {
		panic("wearlevel: inner device too small")
	}
	if psi < 1 {
		panic("wearlevel: psi must be >= 1")
	}
	return &Device{inner: inner, sg: NewStartGap(inner.Blocks() - 1), Psi: psi}
}

// Name implements core.Arch.
func (d *Device) Name() string { return d.inner.Name() + " + start-gap" }

// Blocks implements core.Arch.
func (d *Device) Blocks() int { return d.sg.n }

// CellsPerBlock implements core.Arch.
func (d *Device) CellsPerBlock() int { return d.inner.CellsPerBlock() }

// Density implements core.Arch (one spare line amortized over n).
func (d *Device) Density() float64 {
	return d.inner.Density() * float64(d.sg.n) / float64(d.sg.n+1)
}

// Array implements core.Arch.
func (d *Device) Array() *pcmarray.Array { return d.inner.Array() }

// Write implements core.Arch, advancing the gap every Psi writes.
func (d *Device) Write(block int, data []byte) error {
	if block < 0 || block >= d.sg.n {
		return fmt.Errorf("wearlevel: block %d out of range [0,%d)", block, d.sg.n)
	}
	if err := d.inner.Write(d.sg.Map(block), data); err != nil {
		return err
	}
	d.writes++
	if d.writes%d.Psi == 0 {
		if err := d.moveGap(); err != nil {
			return err
		}
	}
	return nil
}

// moveGap performs one rotation step, copying the displaced line.
func (d *Device) moveGap() error {
	from, to := d.sg.MoveGap()
	data, err := d.inner.Read(from)
	if err != nil && !errors.Is(err, core.ErrUncorrectable) {
		// Never-written (or retired) line: nothing to preserve.
		return nil
	}
	// Move even a corrupted block; leveling must not lose the slot.
	if werr := d.inner.Write(to, data); werr != nil {
		return fmt.Errorf("wearlevel: gap copy: %w", werr)
	}
	return nil
}

// Read implements core.Arch.
func (d *Device) Read(block int) ([]byte, error) {
	if block < 0 || block >= d.sg.n {
		return nil, fmt.Errorf("wearlevel: block %d out of range [0,%d)", block, d.sg.n)
	}
	return d.inner.Read(d.sg.Map(block))
}

// Scrub implements core.Arch.
func (d *Device) Scrub(block int) error {
	if block < 0 || block >= d.sg.n {
		return fmt.Errorf("wearlevel: block %d out of range [0,%d)", block, d.sg.n)
	}
	return d.inner.Scrub(d.sg.Map(block))
}

var _ core.Arch = (*Device)(nil)
