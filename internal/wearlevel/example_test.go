package wearlevel_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pcmarray"
	"repro/internal/wearlevel"
)

// Start-gap leveling spreads a hot block's writes across physical lines.
func Example() {
	opt := pcmarray.DefaultOptions(1)
	opt.EnduranceMean = 0
	inner := core.NewThreeLC(9, core.ThreeLCConfig{Array: opt}) // 8 logical + gap
	dev := wearlevel.Wrap(inner, 4)                             // rotate every 4 writes

	// A full start rotation takes lines×(lines+1) gap moves; at ψ=4 that
	// is a few hundred writes.
	data := make([]byte, core.BlockBytes)
	for i := 0; i < 400; i++ {
		data[0] = byte(i)
		if err := dev.Write(0, data); err != nil { // always the same logical block
			fmt.Println(err)
			return
		}
	}
	touched := 0
	for pb := 0; pb < 9; pb++ {
		if inner.Array().Wear(pb*inner.CellsPerBlock()) > 0 {
			touched++
		}
	}
	fmt.Printf("physical lines written under a single-block workload: %d/9\n", touched)
	// Output:
	// physical lines written under a single-block workload: 9/9
}
