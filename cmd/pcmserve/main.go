// Command pcmserve serves a sharded PCM device over TCP using the
// internal/pcmserve length-prefixed binary protocol, or — with -loadgen
// — spins up a loopback server plus a fleet of concurrent clients and
// reports throughput, latency, and per-shard statistics.
//
// Usage:
//
//	pcmserve -addr :7070 -kind 3LC -mb 4 -shards 8        # serve
//	pcmserve -addr :7070 -obs :9090                       # serve + admin plane
//	pcmserve -loadgen -clients 8 -duration 3s             # self-benchmark
//	pcmserve -loadgen -addr host:7070 -clients 4          # load an external server
//	pcmserve -loadgen -addr h1:7070,h2:7070 -clients 8    # round-robin a server fleet
//	pcmserve -live -levels 4 -timescale 21600 -obs :9090  # drift-backed shards + budgeted refresh
//	pcmserve -sweep -duration 2s                          # refresh-interval sweep benchmark
//
// With -live, each shard is a drift-accumulating pcmlive device: blocks
// age under the paper's CER curves and a budgeted refresh scheduler
// (replacing -scrub) rewrites them within -refresh-interval of
// simulated time, competing with foreground writes for -write-budget
// MB/s. -sweep runs the Figure 16 experiment as a live serving
// benchmark: both organizations × a ladder of refresh intervals, each
// arm reporting availability and tail latency.
//
// With -obs, an admin HTTP plane is served on a second listener:
// /metrics (Prometheus text exposition), /healthz, /tracez (sampled
// request traces and the slow-op log), /debug/flightrecorder, and
// /debug/pprof. Metrics are also published through expvar and the
// STATS wire op.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/pcmserve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7070", "listen address (serve) or comma-separated target addresses spread round-robin across clients (loadgen; empty = in-process loopback server)")
		kindArg = flag.String("kind", "3LC", "3LC, 4LCo, or permutation")
		mb      = flag.Float64("mb", 1, "total device capacity in MiB, split across shards")
		shards  = flag.Int("shards", 4, "independent device shards")
		queue   = flag.Int("queue", 64, "bounded per-shard queue depth (backpressure limit)")
		seed    = flag.Uint64("seed", 1, "random seed")
		level   = flag.Bool("wearlevel", true, "enable start-gap wear leveling per shard")
		reserve = flag.Int("reserve", 4, "remapping reserve blocks per shard")
		noWear  = flag.Bool("nowearout", false, "disable endurance limits")

		inflight  = flag.Int("inflight", 32, "max in-flight requests per connection")
		scrub     = flag.Duration("scrub", 0, "background scrub interval (0 disables); repairs drifted blocks and spares uncorrectable ones")
		integrity = flag.Int("integrity", 0, "BCH correction capability t per 64-byte block (0 disables stored-block integrity; check bits live in sideband blocks and shrink the advertised capacity)")
		verify    = flag.Bool("verify-scrub", false, "scrub by decoding check bits (clean/corrected/uncorrectable outcomes) instead of blind rewrites; requires -integrity and -scrub")
		obsAddr   = flag.String("obs", "", "admin HTTP listen address for /metrics, /healthz, /tracez, /debug/pprof (empty disables)")
		slowOp    = flag.Duration("slowop", 50*time.Millisecond, "slow-op log threshold for /tracez (negative disables)")
		version   = flag.Bool("version", false, "print build information and exit")

		liveMode    = flag.Bool("live", false, "serve drift-accumulating pcmlive devices with budgeted refresh (replaces -kind/-scrub and the classic device knobs)")
		levels      = flag.Int("levels", 4, "live: cell organization — 4 (4LCo+BCH-10, needs refresh) or 3 (3LCo+BCH-1, nonvolatile)")
		refreshIntv = flag.Duration("refresh-interval", 17*time.Minute, "live: full-device refresh interval in SIMULATED time (0 disables refresh)")
		writeBudget = flag.Float64("write-budget", 40, "live: shared write bandwidth budget in MB/s, foreground+refresh (0 = unmetered)")
		timescale   = flag.Float64("timescale", 1, "live: simulated seconds per wall second")
		sweep       = flag.Bool("sweep", false, "run the refresh-interval sweep benchmark (implies -live; in-process only)")

		loadgen  = flag.Bool("loadgen", false, "run the load generator instead of serving")
		clients  = flag.Int("clients", 4, "loadgen: concurrent client connections")
		duration = flag.Duration("duration", 2*time.Second, "loadgen: how long to run")
		opSize   = flag.Int("opsize", 64, "loadgen: bytes per read/write")
		readPct  = flag.Int("readpct", 70, "loadgen: percentage of ops that are reads")
		retry    = flag.Bool("retry", false, "loadgen: use the reconnecting retry client instead of bare connections")
	)
	flag.Parse()
	if *version {
		fmt.Println("pcmserve", obs.BuildInfo())
		return
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pcmserve: "+format+"\n", args...)
		os.Exit(2)
	}
	kinds := map[string]device.ArchKind{
		"3LC": device.ThreeLC, "4LCo": device.FourLC, "permutation": device.Permutation,
	}
	kind, ok := kinds[*kindArg]
	if !ok {
		fail("unknown -kind %q (want 3LC, 4LCo, or permutation)", *kindArg)
	}
	switch {
	case *mb <= 0:
		fail("-mb must be positive, got %g", *mb)
	case *shards < 1:
		fail("-shards must be at least 1, got %d", *shards)
	case *queue < 1:
		fail("-queue must be at least 1, got %d", *queue)
	case *reserve < 0:
		fail("-reserve must not be negative, got %d", *reserve)
	case *inflight < 1:
		fail("-inflight must be at least 1, got %d", *inflight)
	case *scrub < 0:
		fail("-scrub must not be negative, got %v", *scrub)
	case *integrity < 0:
		fail("-integrity must not be negative, got %d", *integrity)
	case *verify && *integrity == 0:
		fail("-verify-scrub requires -integrity")
	case *verify && *scrub == 0 && !*liveMode:
		fail("-verify-scrub requires a -scrub interval")
	}
	if *sweep {
		*liveMode = true
	}
	if *liveMode {
		// The live device models drift only and is refreshed by its own
		// budgeted scheduler: the classic architecture knobs and the
		// fixed-cadence scrubber have no effect, so explicitly setting
		// them alongside -live is a configuration error. Report every
		// conflicting flag at once.
		conflicting := map[string]bool{
			"scrub": true, "verify-scrub": true, "kind": true,
			"wearlevel": true, "reserve": true, "nowearout": true,
		}
		var set []string
		flag.Visit(func(f *flag.Flag) {
			if conflicting[f.Name] {
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			fail("-live replaces the classic device and scrubber; drop the conflicting flags: %s", strings.Join(set, ", "))
		}
		switch {
		case *levels != 3 && *levels != 4:
			fail("-levels must be 3 or 4, got %d", *levels)
		case *refreshIntv < 0:
			fail("-refresh-interval must not be negative, got %v", *refreshIntv)
		case *writeBudget < 0:
			fail("-write-budget must not be negative, got %g", *writeBudget)
		case *timescale <= 0:
			fail("-timescale must be positive, got %g", *timescale)
		}
	} else {
		// The live knobs only mean something with -live.
		liveOnly := map[string]bool{
			"levels": true, "refresh-interval": true, "write-budget": true, "timescale": true,
		}
		var set []string
		flag.Visit(func(f *flag.Flag) {
			if liveOnly[f.Name] {
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			fail("%s need -live (or -sweep)", strings.Join(set, ", "))
		}
	}
	if *loadgen {
		switch {
		case *clients < 1:
			fail("-clients must be at least 1, got %d", *clients)
		case *duration <= 0:
			fail("-duration must be positive, got %v", *duration)
		case *opSize < 1:
			fail("-opsize must be at least 1, got %d", *opSize)
		case *readPct < 0 || *readPct > 100:
			fail("-readpct must be in [0,100], got %d", *readPct)
		}
	} else if strings.Contains(*addr, ",") {
		fail("serve mode takes a single -addr; the comma-separated list %q is loadgen-only", *addr)
	}

	blocksPerShard := int(*mb*1024*1024) / core.BlockBytes / *shards
	if blocksPerShard < 1 {
		blocksPerShard = 1
	}
	newShards := func() *pcmserve.Shards {
		var integCfg *pcmserve.IntegrityConfig
		if *integrity > 0 {
			integCfg = &pcmserve.IntegrityConfig{T: *integrity}
		}
		cfg := pcmserve.ShardsConfig{
			Shards:        *shards,
			QueueDepth:    *queue,
			ScrubInterval: *scrub,
			Integrity:     integCfg,
			VerifyScrub:   *verify,
			Obs:           &pcmserve.Observability{SlowOp: *slowOp},
			Device: device.Config{
				Kind: kind, Blocks: blocksPerShard, Seed: *seed,
				WearLeveling: *level, ReserveBlocks: *reserve,
				DisableWearout: *noWear,
			},
		}
		if *liveMode {
			cfg.ScrubInterval = 0
			cfg.VerifyScrub = false
			cfg.Live = &pcmserve.LiveConfig{
				Levels:                 *levels,
				RefreshIntervalSeconds: refreshIntv.Seconds(),
				WriteBudgetBytesPerSec: *writeBudget * 1e6,
				TimeScale:              *timescale,
			}
		}
		g, err := pcmserve.NewShards(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return g
	}

	if *sweep {
		runSweep(sweepConfig{
			shards:         *shards,
			blocksPerShard: blocksPerShard,
			seed:           *seed,
			baseInterval:   refreshIntv.Seconds(),
			budgetMBs:      *writeBudget,
			perArm:         *duration,
			clients:        *clients,
		})
		return
	}

	if *loadgen {
		runLoadgen(*addr, newShards, *inflight, *clients, *duration, *opSize, *readPct, *retry)
		return
	}

	g := newShards()
	defer g.Close()
	srv := pcmserve.NewServer(g, pcmserve.ServerConfig{
		MaxInflight: *inflight,
		ExpvarName:  "pcmserve",
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("pcmserve: %s (%.2f MiB, %d shards × %d blocks) on %s\n",
		g.Name(), float64(g.Size())/(1<<20), g.NumShards(), blocksPerShard, ln.Addr())
	if *liveMode {
		refresh := "disabled"
		if *refreshIntv > 0 {
			refresh = fmt.Sprintf("every %v (sim)", *refreshIntv)
		}
		fmt.Printf("pcmserve: live drift mode, %dLCo, refresh %s, budget %g MB/s, timescale %g×\n",
			*levels, refresh, *writeBudget, *timescale)
	}

	if *obsAddr != "" {
		obsLn, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs listen:", err)
			os.Exit(1)
		}
		obsSrv := &http.Server{Handler: srv.AdminHandler()}
		go obsSrv.Serve(obsLn)
		defer obsSrv.Close()
		fmt.Printf("pcmserve: admin plane (metrics, healthz, tracez, pprof) on %s\n", obsLn.Addr())
	}

	// Serve until SIGINT/SIGTERM, then drain gracefully.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("pcmserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
	}
}

// loadClient is the slice of the client API the load generator uses;
// both pcmserve.Client and pcmserve.RetryClient satisfy it.
type loadClient interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Stats() (pcmserve.Stats, error)
	Close() error
}

// runLoadgen drives one or more servers — an in-process loopback one
// when target is empty or left at the default — with concurrent
// clients issuing random reads and writes, then prints throughput and
// each server's own statistics. A comma-separated target list is
// spread round-robin across the client fleet. SIGINT or SIGTERM ends
// the run early but still prints the report.
func runLoadgen(target string, newShards func() *pcmserve.Shards, inflight, clients int, duration time.Duration, opSize, readPct int, retry bool) {
	var targets []string
	if target == "" || target == "127.0.0.1:7070" {
		g := newShards()
		defer g.Close()
		srv := pcmserve.NewServer(g, pcmserve.ServerConfig{MaxInflight: inflight})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		go srv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		targets = []string{ln.Addr().String()}
		fmt.Printf("loadgen: loopback server %s on %s\n", g.Name(), targets[0])
	} else {
		for _, a := range strings.Split(target, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				fmt.Fprintf(os.Stderr, "-addr contains an empty element: %q\n", target)
				os.Exit(2)
			}
			targets = append(targets, a)
		}
	}

	// Probe every target's device size through throwaway clients; the
	// offset span must fit the smallest one.
	span := int64(-1)
	for _, tgt := range targets {
		probe, err := pcmserve.Dial(tgt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err := probe.Stats()
		probe.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "stats probe %s: %v\n", tgt, err)
			os.Exit(1)
		}
		if span < 0 || st.SizeBytes < span {
			span = st.SizeBytes
		}
	}
	if span < int64(opSize) {
		fmt.Fprintf(os.Stderr, "smallest device %d bytes smaller than -opsize %d\n", span, opSize)
		os.Exit(1)
	}

	var ops, bytesMoved atomic.Uint64
	var errCount, shedCount atomic.Uint64
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	timer := time.AfterFunc(duration, halt)
	defer timer.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		if s, ok := <-sig; ok {
			fmt.Printf("loadgen: %v, stopping early\n", s)
			halt()
		}
	}()

	dial := func(w int) (loadClient, error) {
		tgt := targets[w%len(targets)]
		if retry {
			return pcmserve.DialRetry(tgt, pcmserve.RetryConfig{Seed: uint64(w) + 1})
		}
		return pcmserve.Dial(tgt)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := dial(w)
			if err != nil {
				errCount.Add(1)
				return
			}
			defer c.Close()
			r := rand.New(rand.NewSource(int64(w) + 1))
			buf := make([]byte, opSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := r.Int63n(span - int64(opSize) + 1)
				var err error
				if r.Intn(100) < readPct {
					_, err = c.ReadAt(buf, off)
				} else {
					r.Read(buf)
					_, err = c.WriteAt(buf, off)
				}
				if err != nil {
					// Typed shed verdicts are the overload-control path
					// working, not a fault: count them separately.
					if errors.Is(err, pcmserve.ErrOverloaded) ||
						errors.Is(err, pcmserve.ErrDeadlineExceeded) ||
						errors.Is(err, pcmserve.ErrRetryBudgetExhausted) {
						shedCount.Add(1)
					} else {
						errCount.Add(1)
					}
					continue
				}
				ops.Add(1)
				bytesMoved.Add(uint64(opSize))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	done, moved := ops.Load(), bytesMoved.Load()
	fmt.Printf("loadgen: %d clients, %v: %d ops (%.0f ops/s), %.2f MiB/s, %d errors, %d shed\n",
		clients, elapsed.Round(time.Millisecond), done,
		float64(done)/elapsed.Seconds(),
		float64(moved)/(1<<20)/elapsed.Seconds(), errCount.Load(), shedCount.Load())

	for _, tgt := range targets {
		if len(targets) > 1 {
			fmt.Printf("--- %s ---\n", tgt)
		}
		printFinalStats(tgt)
	}
}

// printFinalStats fetches one last STATS snapshot and prints the
// server-side view — scrub, verify, and integrity-repair counters
// included — even when the run was cut short by SIGINT. Fetch failures
// are reported instead of silently dropping the report: the counters
// are half the point of a scrub- or integrity-enabled run.
func printFinalStats(target string) {
	final, err := pcmserve.Dial(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "final stats: dial:", err)
		return
	}
	defer final.Close()
	st, err := final.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "final stats:", err)
		return
	}
	fmt.Printf("server: reads=%d writes=%d errors=%d conns=%d\n",
		st.Reads, st.Writes, st.Errors, st.TotalConns)
	if ov := st.Overload; ov.ShedBackground+ov.ShedForeground+ov.ExpiredDequeued > 0 {
		fmt.Printf("overload: shed_background=%d shed_foreground=%d expired_dequeued=%d queue_pressure=%.2f\n",
			ov.ShedBackground, ov.ShedForeground, ov.ExpiredDequeued, ov.QueuePressure)
	}
	if sc := st.Scrub; sc.Scrubbed > 0 {
		fmt.Printf("scrub: passes=%d scrubbed=%d repaired=%d uncorrectable=%d spared=%d retired=%d\n",
			sc.Passes, sc.Scrubbed, sc.Repaired, sc.Uncorrectable, sc.Spared, sc.Retired)
		if verify := sc.VerifyClean + sc.VerifyCorrected + sc.VerifyUncorrectable; verify > 0 {
			fmt.Printf("verify: clean=%d corrected=%d uncorrectable=%d\n",
				sc.VerifyClean, sc.VerifyCorrected, sc.VerifyUncorrectable)
		}
	}
	if ig := st.Integrity; ig.Enabled {
		fmt.Printf("integrity [%s]: corrected_bits=%d read_repairs=%d uncorrectable=%d spared=%d escalated=%d\n",
			ig.Code, ig.CorrectedBits, ig.ReadRepairs, ig.Uncorrectable, ig.Spared, ig.Escalated)
	}
	if lv := st.Live; lv.Enabled {
		fmt.Printf("live [%s]: interval=%.0fs(sim) timescale=%g sim_elapsed=%.0fs passes=%d\n",
			lv.Model, lv.IntervalSeconds, lv.TimeScale, lv.SimSeconds, lv.Passes)
		fmt.Printf("live: uncorrectable_reads=%d corrected_reads=%d refresh_clean=%d refresh_corrected=%d refresh_uncorrectable=%d\n",
			lv.UncorrectableReads, lv.CorrectedReads, lv.RefreshClean, lv.RefreshCorrected, lv.RefreshUncorrectable)
		fmt.Printf("live: debt=%d debt_peak=%d deadline_misses=%d forced=%d skipped_budget=%d stalled_writes=%d stall=%.3fs\n",
			lv.DebtBlocks, lv.DebtPeak, lv.DeadlineMisses, lv.Forced, lv.SkippedBudget, lv.StalledWrites, lv.StallSeconds)
	}
	for _, s := range st.Shards {
		fmt.Printf("  shard %d [%s]: reads=%d writes=%d queue=%d/%d restarts=%d p50(read)=%s\n",
			s.Shard, s.Health, s.Reads, s.Writes, s.QueueDepth, s.QueueCap,
			s.Restarts, histP50(s.ReadLatencyUs))
	}
}

// histP50 estimates the median latency bucket of a power-of-two
// histogram, returning a human-readable bound.
func histP50(buckets []uint64) string {
	var total uint64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return "n/a"
	}
	var cum uint64
	for i, c := range buckets {
		cum += c
		if cum*2 >= total {
			return fmt.Sprintf("<%dµs", uint64(1)<<uint(i))
		}
	}
	return "n/a"
}
