package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pcmserve"
)

// sweepConfig parameterizes the refresh-interval sweep benchmark.
type sweepConfig struct {
	shards         int
	blocksPerShard int
	seed           uint64
	baseInterval   float64 // paper refresh interval in sim seconds
	budgetMBs      float64
	perArm         time.Duration
	clients        int
}

// sweepMults are the refresh-interval ladder: the paper interval and
// 10×/100×/1000× relaxations, plus a refresh-off control arm (0).
var sweepMults = []float64{1, 10, 100, 1000, 0}

// passesPerArm is how many full refresh passes each arm's wall
// duration covers; the per-arm time scale is derived from it, which
// keeps the refresh WALL bandwidth demand identical across arms — only
// the simulated interval (and hence the drift exposure) varies.
const passesPerArm = 4

// armResult is one (organization, interval) cell of the sweep.
type armResult struct {
	org         string
	label       string
	intervalSim float64
	timeScale   float64

	reads, badReads, writes uint64
	readP50, readP99        time.Duration
	writeP99                time.Duration

	live pcmserve.LiveStats
}

// runSweep is the paper's Figure 16 retention study recast as a live
// serving benchmark: for each cell organization and each refresh
// interval, drift-backed shards serve concurrent random reads and
// writes for one arm duration at a time scale that compresses
// passesPerArm refresh intervals into the arm. Reported per arm:
// availability (reads not lost to drift), foreground tail latency, and
// the refresh-side counters (uncorrectable refreshes, debt peak,
// deadline misses, budget stalls).
func runSweep(cfg sweepConfig) {
	fmt.Printf("sweep: %d shards × %d blocks, budget %g MB/s, %v per arm (%d passes), %d clients\n",
		cfg.shards, cfg.blocksPerShard, cfg.budgetMBs, cfg.perArm, passesPerArm, cfg.clients)
	var results []armResult
	for _, levels := range []int{4, 3} {
		for _, mult := range sweepMults {
			res, err := runArm(cfg, levels, mult)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			results = append(results, res)
		}
	}
	printSweepTable(results)
}

// armTimeScale derives the arm's sim-seconds-per-wall-second. The
// refresh-off arm borrows the largest refreshing arm's scale, so its
// drift exposure brackets the ladder from above.
func armTimeScale(cfg sweepConfig, mult float64) float64 {
	m := mult
	if m == 0 {
		m = sweepMults[len(sweepMults)-2] // largest refreshing multiplier
	}
	return passesPerArm * cfg.baseInterval * m / cfg.perArm.Seconds()
}

func armLabel(mult float64) string {
	if mult == 0 {
		return "off"
	}
	return fmt.Sprintf("%g×", mult)
}

// runArm serves one (organization, interval) arm and collects its
// result row.
func runArm(cfg sweepConfig, levels int, mult float64) (armResult, error) {
	ts := armTimeScale(cfg, mult)
	live := pcmserve.LiveConfig{
		Levels:                 levels,
		RefreshIntervalSeconds: cfg.baseInterval * mult, // 0 disables
		WriteBudgetBytesPerSec: cfg.budgetMBs * 1e6,
		TimeScale:              ts,
	}
	g, err := pcmserve.NewShards(pcmserve.ShardsConfig{
		Shards: cfg.shards,
		Device: device.Config{Blocks: cfg.blocksPerShard, Seed: cfg.seed},
		Live:   &live,
	})
	if err != nil {
		return armResult{}, err
	}
	defer g.Close()

	// Pre-fill so every block drifts from the start.
	buf := make([]byte, core.BlockBytes)
	for off := int64(0); off < g.Size(); off += core.BlockBytes {
		for i := range buf {
			buf[i] = byte(off) + byte(i)
		}
		if _, err := g.WriteAt(buf, off); err != nil {
			return armResult{}, fmt.Errorf("fill: %w", err)
		}
	}

	type workerTally struct {
		reads, badReads, writes uint64
		readLat, writeLat       []time.Duration
	}
	tallies := make([]workerTally, cfg.clients)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	blocks := g.Size() / core.BlockBytes
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := &tallies[w]
			r := rand.New(rand.NewSource(int64(cfg.seed) + int64(w)))
			p := make([]byte, core.BlockBytes)
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := r.Int63n(blocks) * core.BlockBytes
				t0 := time.Now()
				if r.Intn(100) < 70 {
					_, err := g.ReadAt(p, off)
					tl.readLat = append(tl.readLat, time.Since(t0))
					tl.reads++
					switch {
					case err == nil:
					case errors.Is(err, core.ErrUncorrectable):
						tl.badReads++
					default:
						return
					}
				} else {
					r.Read(p)
					if _, err := g.WriteAt(p, off); err != nil {
						return
					}
					tl.writeLat = append(tl.writeLat, time.Since(t0))
					tl.writes++
				}
			}
		}(w)
	}
	time.Sleep(cfg.perArm)
	close(stop)
	wg.Wait()

	res := armResult{
		org:         fmt.Sprintf("%dLCo", levels),
		label:       armLabel(mult),
		intervalSim: cfg.baseInterval * mult,
		timeScale:   ts,
		live:        g.LiveStats(),
	}
	var readLat, writeLat []time.Duration
	for i := range tallies {
		res.reads += tallies[i].reads
		res.badReads += tallies[i].badReads
		res.writes += tallies[i].writes
		readLat = append(readLat, tallies[i].readLat...)
		writeLat = append(writeLat, tallies[i].writeLat...)
	}
	res.readP50 = percentile(readLat, 50)
	res.readP99 = percentile(readLat, 99)
	res.writeP99 = percentile(writeLat, 99)
	return res, nil
}

// percentile returns the pth percentile of the (unsorted) samples.
func percentile(lat []time.Duration, p int) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := len(lat) * p / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}

// printSweepTable renders the sweep as a markdown table (the format
// EXPERIMENTS.md records).
func printSweepTable(results []armResult) {
	fmt.Println("\n| org | refresh | sim interval | timescale | reads | availability | p50 read | p99 read | p99 write | refresh uncorr | debt peak | misses | stalled writes |")
	fmt.Println("|-----|---------|--------------|-----------|-------|--------------|----------|----------|-----------|----------------|-----------|--------|----------------|")
	for _, r := range results {
		avail := 100.0
		if r.reads > 0 {
			avail = 100 * float64(r.reads-r.badReads) / float64(r.reads)
		}
		interval := "—"
		if r.intervalSim > 0 {
			interval = fmt.Sprintf("%.0fs", r.intervalSim)
		}
		fmt.Printf("| %s | %s | %s | %.0f× | %d | %.4f%% | %s | %s | %s | %d | %d | %d | %d |\n",
			r.org, r.label, interval, r.timeScale, r.reads, avail,
			r.readP50.Round(time.Microsecond), r.readP99.Round(time.Microsecond),
			r.writeP99.Round(time.Microsecond),
			r.live.RefreshUncorrectable, r.live.DebtPeak,
			r.live.DeadlineMisses, r.live.StalledWrites)
	}
}
