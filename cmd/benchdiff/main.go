// Command benchdiff compares two Go benchmark runs and gates on
// regressions of a chosen metric. It understands both raw `go test
// -bench` text and `go test -json` streams (the format CI archives as
// BENCH_baseline.json), so a committed baseline can be compared against
// a fresh run directly:
//
//	go test -run xxx -bench PCMServe -benchtime 1x -json . > current.json
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current current.json
//
// Every benchmark present in both runs is printed with its per-unit
// deltas. The run fails (exit 1) when the gated metric (default
// p99-us, the served-op tail latency) regresses by more than
// -threshold percent on any benchmark.
//
// -compare '<candidate>=<baseline>' switches to within-run mode: both
// names are taken from -current (no baseline file needed) and the
// candidate is gated against the baseline on -metric. This is how CI
// holds the traced quorum path to within a few percent of the
// untraced baseline from one `-bench ClusterQuorum -count 3` run:
//
//	go run ./cmd/benchdiff -current bench.txt -metric ns/op -threshold 5 \
//	  -compare BenchmarkClusterQuorum/traced=BenchmarkClusterQuorum/untraced
//
// Repeated results for one benchmark (-count > 1) collapse to the
// per-unit minimum — the standard noise floor for latency-style
// metrics, where every disturbance only ever adds time.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's metrics: unit → value (e.g.
// "ns/op" → 69957, "p99-us" → 115).
type benchResult map[string]float64

// parseFile reads a benchmark output file into name → metrics. A
// `go test -json` stream is first reassembled into plain output —
// test2json splits one benchmark result line across several Output
// events (the name and the metrics arrive separately), so events must
// be concatenated before line-scanning.
func parseFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Output string `json:"Output"`
			}
			if json.Unmarshal([]byte(line), &ev) == nil {
				text.WriteString(ev.Output)
				continue
			}
		}
		text.WriteString(line)
		text.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]benchResult)
	for _, line := range strings.Split(text.String(), "\n") {
		if name, res, ok := parseBenchLine(line); ok {
			prev, seen := out[name]
			if !seen {
				out[name] = res
				continue
			}
			// -count > 1: keep the per-unit minimum as the noise floor.
			for u, v := range res {
				if old, ok := prev[u]; !ok || v < old {
					prev[u] = v
				}
			}
		}
	}
	return out, nil
}

// parseBenchLine parses one `BenchmarkX-8  123  456 ns/op  7.8 p99-us`
// result line.
func parseBenchLine(line string) (string, benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false // not an iteration count: some other output
	}
	res := make(benchResult)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		res[fields[i+1]] = v
	}
	if len(res) == 0 {
		return "", nil, false
	}
	// Strip the GOMAXPROCS suffix so baselines survive core-count changes.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, res, true
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "baseline benchmark output (raw or -json)")
	current := flag.String("current", "", "current benchmark output to compare (required)")
	metric := flag.String("metric", "p99-us", "metric unit gated by -threshold")
	threshold := flag.Float64("threshold", 25, "fail when the gated metric regresses by more than this percent")
	compare := flag.String("compare", "", "within-run gate: '<candidate>=<baseline>' benchmark names, both from -current")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	cur, err := parseFile(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: current:", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in", *current)
		os.Exit(2)
	}
	if *compare != "" {
		os.Exit(compareWithinRun(cur, *compare, *metric, *threshold))
	}
	base, err := parseFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: baseline:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			fmt.Printf("%-40s new benchmark (no baseline)\n", name)
			continue
		}
		units := make([]string, 0, len(cur[name]))
		for u := range cur[name] {
			if _, ok := b[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		parts := make([]string, 0, len(units))
		for _, u := range units {
			from, to := b[u], cur[name][u]
			delta := 0.0
			if from != 0 {
				delta = 100 * (to - from) / from
			}
			parts = append(parts, fmt.Sprintf("%s %.4g→%.4g (%+.1f%%)", u, from, to, delta))
			if u == *metric && delta > *threshold {
				failed = true
				parts[len(parts)-1] += " REGRESSION"
			}
		}
		fmt.Printf("%-40s %s\n", name, strings.Join(parts, "  "))
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: %s regressed beyond %.0f%% on at least one benchmark\n", *metric, *threshold)
		os.Exit(1)
	}
}

// compareWithinRun gates one benchmark against another from the same
// run ("candidate=baseline") and returns the process exit code.
func compareWithinRun(cur map[string]benchResult, pair, metric string, threshold float64) int {
	candName, baseName, ok := strings.Cut(pair, "=")
	if !ok || candName == "" || baseName == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -compare wants '<candidate>=<baseline>'")
		return 2
	}
	cand, okC := cur[candName]
	base, okB := cur[baseName]
	if !okC || !okB {
		have := make([]string, 0, len(cur))
		for name := range cur {
			have = append(have, name)
		}
		sort.Strings(have)
		fmt.Fprintf(os.Stderr, "benchdiff: -compare names not both present; run has: %s\n",
			strings.Join(have, ", "))
		return 2
	}
	from, okF := base[metric]
	to, okT := cand[metric]
	if !okF || !okT {
		fmt.Fprintf(os.Stderr, "benchdiff: metric %q missing from one side\n", metric)
		return 2
	}
	delta := 0.0
	if from != 0 {
		delta = 100 * (to - from) / from
	}
	fmt.Printf("%s vs %s: %s %.4g→%.4g (%+.1f%%, gate %.0f%%)\n",
		candName, baseName, metric, from, to, delta, threshold)
	if delta > threshold {
		fmt.Fprintf(os.Stderr, "benchdiff: %s exceeds %s by more than %.0f%% on %s\n",
			candName, baseName, threshold, metric)
		return 1
	}
	return 0
}
