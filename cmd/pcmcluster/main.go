// Command pcmcluster drives a replicated cluster of pcmserve nodes
// with quorum reads and writes, verifying that every read returns the
// exact last-acknowledged data — the client-side harness for the
// internal/pcmcluster replication layer.
//
// Usage:
//
//	pcmcluster -nodes h1:7070,h2:7070,h3:7070 -duration 10s   # load external nodes
//	pcmcluster -spawn 3 -duration 5s                          # self-contained: 3 in-process nodes
//	pcmcluster -nodes ... -obs :9091                          # + admin plane (/metrics, /healthz)
//	pcmcluster -nodes h1:7070,h2:7070,h3:7070 -drain h2:7070  # drain one node, report safe-to-stop
//	pcmcluster -spawn 3 -join-at 2s -drain-at 4s -duration 8s # membership churn under load
//
// The load generator partitions the block space across workers; each
// worker mirrors its acknowledged writes and checks every read against
// the mirror. Quorum errors under failure are tolerated (and counted);
// a read returning wrong bytes is a data error, and any data error
// makes the process exit nonzero — as does a hinted-handoff overflow
// drop (dropped_overflow), which silently widens the divergence window
// and means the run was undersized for its hint capacity. Blocks this
// run never wrote are required to read as zeros only in -spawn mode
// (fresh nodes); an external -nodes fleet may legitimately hold data
// from earlier runs. The final report prints "data errors: N" even
// when the run is cut short by SIGINT.
//
// Membership actions: -drain re-replicates the named node's slots,
// fences it, replays its pending hints, and prints safe-to-stop.
// In -spawn mode, -join-at spawns one extra node mid-run and joins it
// under load; -drain-at drains the first spawned node mid-run and then
// stops its server gracefully. SIGINT/SIGTERM stops the loadgen early
// and still shuts every spawned node down via graceful drain.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/pcmcluster"
	"repro/internal/pcmserve"
)

func main() {
	var (
		nodesArg = flag.String("nodes", "", "comma-separated pcmserve node addresses")
		spawn    = flag.Int("spawn", 0, "spawn this many in-process loopback nodes instead of -nodes")
		mb       = flag.Float64("mb", 1, "spawned nodes: per-node capacity in MiB")
		shards   = flag.Int("shards", 4, "spawned nodes: device shards per node")

		rf = flag.Int("rf", 0, "replication factor (default min(3, nodes))")
		w  = flag.Int("w", 0, "write quorum (default rf/2+1)")
		r  = flag.Int("r", 0, "read quorum (default rf/2+1)")
		ec = flag.String("ec", "", "erasure coding \"K+M\" (e.g. 4+2): Reed-Solomon stripe each block onto K+M nodes instead of mirroring (mutually exclusive with -rf/-w/-r)")

		clients  = flag.Int("clients", 4, "concurrent loadgen workers")
		duration = flag.Duration("duration", 3*time.Second, "how long to run")
		readPct  = flag.Int("readpct", 50, "percentage of ops that are reads")
		span     = flag.Int64("blocks", 0, "restrict the loadgen to the first N blocks (0 = all)")

		antiEntropy = flag.Duration("antientropy", 5*time.Millisecond, "per-partition anti-entropy sweep cadence (0 disables)")
		hintReplay  = flag.Duration("hint-replay", 50*time.Millisecond, "hinted-handoff replay cadence")
		probe       = flag.Duration("probe", 100*time.Millisecond, "down-node half-open probe interval")
		opTimeout   = flag.Duration("optimeout", 2*time.Second, "per-replica operation timeout")
		seed        = flag.Uint64("seed", 0, "seed for version tags, retry jitter, and spawned devices (0 = random per process)")
		obsAddr     = flag.String("obs", "", "admin HTTP listen address for /metrics, /healthz, /tracez, /clusterz (empty disables)")
		nodeObs     = flag.String("node-obs", "", "comma-separated addr=url pairs mapping -nodes addresses to their admin-plane base URLs, for /clusterz trace stitching (spawn mode wires this automatically)")
		traceSample = flag.Int("trace-sample", 1, "keep one in N fast cluster traces (1 keeps all; slow traces always kept)")
		slowQuorum  = flag.Duration("slow-quorum", 50*time.Millisecond, "time-to-quorum past which an op enters the slow-quorum log (negative disables)")
		noTrace     = flag.Bool("notrace", false, "disable the trace plane entirely (the untraced baseline for overhead measurement)")
		sloTarget   = flag.Duration("slo-latency", 100*time.Millisecond, "latency SLO: quorum ops at or under this count good")

		drainArg = flag.String("drain", "", "admin action: drain this node from the -nodes cluster, report safe-to-stop, and exit (no loadgen)")
		joinAt   = flag.Duration("join-at", 0, "spawn mode: spawn and join one extra node this long into the run (0 disables)")
		drainAt  = flag.Duration("drain-at", 0, "spawn mode: drain and stop the first spawned node this long into the run (0 disables)")

		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("pcmcluster", obs.BuildInfo())
		return
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pcmcluster: "+format+"\n", args...)
		os.Exit(2)
	}
	switch {
	case *nodesArg == "" && *spawn == 0:
		fail("need -nodes or -spawn")
	case *nodesArg != "" && *spawn > 0:
		fail("-nodes and -spawn are mutually exclusive")
	case *spawn < 0:
		fail("-spawn must not be negative, got %d", *spawn)
	case *mb <= 0:
		fail("-mb must be positive, got %g", *mb)
	case *shards < 1:
		fail("-shards must be at least 1, got %d", *shards)
	case *rf < 0 || *w < 0 || *r < 0:
		fail("-rf, -w, -r must not be negative")
	case *ec != "" && *rf != 0:
		fail("-ec %s and -rf %d conflict: erasure coding fixes the replication factor at K+M; drop -rf or -ec", *ec, *rf)
	case *ec != "" && (*w != 0 || *r != 0):
		fail("-ec %s conflicts with -w/-r: erasure coding fixes the quorums at W=K+⌈M/2⌉, R=K", *ec)
	case *clients < 1:
		fail("-clients must be at least 1, got %d", *clients)
	case *duration <= 0:
		fail("-duration must be positive, got %v", *duration)
	case *readPct < 0 || *readPct > 100:
		fail("-readpct must be in [0,100], got %d", *readPct)
	case *span < 0:
		fail("-blocks must not be negative, got %d", *span)
	case *hintReplay <= 0:
		fail("-hint-replay must be positive, got %v", *hintReplay)
	case *probe <= 0:
		fail("-probe must be positive, got %v", *probe)
	case *opTimeout <= 0:
		fail("-optimeout must be positive, got %v", *opTimeout)
	case *antiEntropy < 0:
		fail("-antientropy must not be negative, got %v", *antiEntropy)
	case *drainArg != "" && *nodesArg == "":
		fail("-drain is an admin action against an external -nodes cluster")
	case *joinAt < 0 || *drainAt < 0:
		fail("-join-at and -drain-at must not be negative")
	case (*joinAt > 0 || *drainAt > 0) && *spawn == 0:
		fail("-join-at and -drain-at need -spawn (they manage in-process nodes)")
	case *joinAt >= *duration && *joinAt > 0:
		fail("-join-at %v must fall inside -duration %v", *joinAt, *duration)
	case *drainAt >= *duration && *drainAt > 0:
		fail("-drain-at %v must fall inside -duration %v", *drainAt, *duration)
	case *traceSample < 1:
		fail("-trace-sample must be at least 1, got %d", *traceSample)
	case *sloTarget <= 0:
		fail("-slo-latency must be positive, got %v", *sloTarget)
	case *nodeObs != "" && *spawn > 0:
		fail("-node-obs maps external -nodes addresses; spawn mode wires node admin planes automatically")
	}

	// Node admin-plane URLs feed /clusterz trace stitching: spawn mode
	// fills these as nodes come up; external fleets declare them.
	nodeAdminURLs := make(map[string]string)
	if *nodeObs != "" {
		for _, pair := range strings.Split(*nodeObs, ",") {
			addr, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || addr == "" || url == "" {
				fail("-node-obs entry %q is not addr=url", pair)
			}
			nodeAdminURLs[addr] = url
		}
	}

	devSeed := *seed
	if devSeed == 0 {
		devSeed = 1 // device sim wants a deterministic nonzero seed
	}
	fleet := newFleet()
	var addrs []string
	if *spawn > 0 {
		for i := 0; i < *spawn; i++ {
			addrs = append(addrs, fleet.spawn(fail, *mb, *shards, devSeed+uint64(i)*1000))
		}
		fmt.Printf("pcmcluster: spawned %d loopback nodes: %s\n", *spawn, strings.Join(addrs, ", "))
	} else {
		for _, a := range strings.Split(*nodesArg, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				fail("-nodes contains an empty address: %q", *nodesArg)
			}
			addrs = append(addrs, a)
		}
	}

	coding := ""
	if *ec != "" {
		coding = "rs:" + *ec
	}
	c, err := pcmcluster.New(pcmcluster.Config{
		Nodes:               addrs,
		Coding:              coding,
		ReplicationFactor:   *rf,
		WriteQuorum:         *w,
		ReadQuorum:          *r,
		OpTimeout:           *opTimeout,
		ProbeInterval:       *probe,
		HintReplayInterval:  *hintReplay,
		AntiEntropyInterval: *antiEntropy,
		Seed:                *seed,
		TraceSampleEvery:    *traceSample,
		SlowQuorumThreshold: *slowQuorum,
		DisableTracing:      *noTrace,
		SLOLatencyTarget:    *sloTarget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcmcluster:", err)
		os.Exit(1)
	}
	defer c.Close()

	if *drainArg != "" {
		runDrainAction(c, *drainArg)
		return
	}

	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs listen:", err)
			os.Exit(1)
		}
		// Stitch sources: spawn mode tracks its own fleet (join/drain
		// keep it current); external fleets use the -node-obs mapping.
		sources := fleet.sources
		if *spawn == 0 {
			sources = func() []obs.StitchSource {
				out := make([]obs.StitchSource, 0, len(nodeAdminURLs))
				for addr, url := range nodeAdminURLs {
					out = append(out, obs.StitchSource{Node: addr, URL: url})
				}
				return out
			}
		}
		obsSrv := &http.Server{Handler: obs.AdminHandler(obs.AdminConfig{
			Registry:    c.Registry(),
			Health:      c.Health,
			Traces:      c.Traces(),
			ClusterInfo: func() any { return c.Clusterz() },
			Stitcher:    &obs.Stitcher{Local: c.Traces(), Sources: sources},
		})}
		go obsSrv.Serve(ln)
		defer obsSrv.Close()
		fmt.Printf("pcmcluster: admin plane (metrics, healthz, tracez, clusterz) on %s\n", ln.Addr())
	}

	blocks := c.Blocks()
	if *span > 0 && *span < blocks {
		blocks = *span
	}
	if blocks < int64(*clients) {
		fail("only %d blocks for %d clients; shrink -clients or grow the nodes", blocks, *clients)
	}
	st := c.Stats()
	fmt.Printf("pcmcluster: %d nodes, coding=%s rf=%d w=%d r=%d overhead=%.2fx, %d blocks (%d in play)\n",
		len(addrs), st.Coding, st.ReplicationFactor, st.WriteQuorum, st.ReadQuorum,
		st.StorageOverhead, c.Blocks(), blocks)

	// Membership churn rides alongside the loadgen: the join spawns a
	// fresh node and streams it in; the drain re-replicates node 1's
	// slots and then stops its server for real. Cluster.memMu serializes
	// the two, so -join-at < -drain-at simply queues the drain behind
	// the join.
	var memWG sync.WaitGroup
	var memErrs atomic.Uint64
	if *joinAt > 0 {
		memWG.Add(1)
		go func() {
			defer memWG.Done()
			time.Sleep(*joinAt)
			addr := fleet.spawn(fail, *mb, *shards, devSeed+uint64(*spawn)*1000)
			fmt.Printf("pcmcluster: joining %s mid-run\n", addr)
			if err := c.Join(context.Background(), addr); err != nil {
				fmt.Fprintf(os.Stderr, "pcmcluster: join %s: %v\n", addr, err)
				memErrs.Add(1)
				return
			}
			fmt.Printf("pcmcluster: joined %s (caught up, serving reads)\n", addr)
		}()
	}
	if *drainAt > 0 {
		memWG.Add(1)
		go func() {
			defer memWG.Done()
			time.Sleep(*drainAt)
			target := addrs[0]
			fmt.Printf("pcmcluster: draining %s mid-run\n", target)
			if err := c.Drain(context.Background(), target); err != nil {
				fmt.Fprintf(os.Stderr, "pcmcluster: drain %s: %v\n", target, err)
				memErrs.Add(1)
				return
			}
			fmt.Printf("pcmcluster: drained %s; stopping its server\n", target)
			if err := fleet.stop(target); err != nil {
				fmt.Fprintf(os.Stderr, "pcmcluster: stop %s: %v\n", target, err)
				memErrs.Add(1)
			}
		}()
	}

	dataErrors := runLoadgen(c, blocks, *clients, *duration, *readPct, *spawn > 0)
	memWG.Wait()

	report(c, dataErrors)

	// Spawned servers get the same graceful drain a SIGTERMed external
	// node would: stop client traffic first, then shut each down and
	// wait for in-flight requests.
	c.Close()
	fleet.stopAll()

	final := c.Stats()
	exit := 0
	if dataErrors > 0 {
		exit = 1
	}
	if final.HintsDroppedFull > 0 {
		fmt.Fprintf(os.Stderr, "pcmcluster: FAILED: %d hints dropped on overflow (divergence window exceeded hint capacity)\n",
			final.HintsDroppedFull)
		exit = 1
	}
	if memErrs.Load() > 0 {
		fmt.Fprintf(os.Stderr, "pcmcluster: FAILED: %d membership actions failed\n", memErrs.Load())
		exit = 1
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// runDrainAction is the -drain admin path: one planned removal, then
// a safe-to-stop report. SIGINT/SIGTERM aborts the drain cleanly (the
// cluster reverts to the old placement).
func runDrainAction(c *pcmcluster.Cluster, target string) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	start := time.Now()
	fmt.Printf("pcmcluster: draining %s (re-replicating its slots, then fencing writes)\n", target)
	if err := c.Drain(ctx, target); err != nil {
		fmt.Fprintf(os.Stderr, "pcmcluster: drain %s: %v\n", target, err)
		os.Exit(1)
	}
	st := c.Stats()
	fmt.Printf("drain: done in %v: slots pushed=%d skipped=%d, segments=%d resumes=%d, hints replayed=%d stale=%d\n",
		time.Since(start).Round(time.Millisecond),
		st.TransferSlotsPushed, st.TransferSlotsSkipped,
		st.TransferSegments, st.TransferResumes,
		st.DrainHintsReplayed, st.DrainHintsStale)
	fmt.Printf("pcmcluster: %s is out of every placement and fenced — safe to stop\n", target)
}

// fleet tracks the in-process pcmserve nodes this run spawned so
// membership actions and shutdown can stop them gracefully. Every
// spawned node also gets its own loopback admin plane (per-node
// /tracez for trace stitching, sampled at keep-everything).
type fleet struct {
	mu     sync.Mutex
	srvs   map[string]*pcmserve.Server
	admins map[string]*http.Server
	urls   map[string]string // node addr → admin base URL
}

func newFleet() *fleet {
	return &fleet{
		srvs:   make(map[string]*pcmserve.Server),
		admins: make(map[string]*http.Server),
		urls:   make(map[string]string),
	}
}

// spawn brings up one in-process pcmserve node on a loopback port and
// returns its address.
func (f *fleet) spawn(fail func(string, ...any), mb float64, shards int, seed uint64) string {
	blocksPerShard := int(mb*1024*1024) / 64 / shards
	if blocksPerShard < 1 {
		blocksPerShard = 1
	}
	g, err := pcmserve.NewShards(pcmserve.ShardsConfig{
		Shards: shards,
		Device: device.Config{Blocks: blocksPerShard, Seed: seed, DisableWearout: true},
		Obs:    &pcmserve.Observability{TraceSampleEvery: 1},
	})
	if err != nil {
		fail("spawn node: %v", err)
	}
	srv := pcmserve.NewServer(g, pcmserve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("spawn node listen: %v", err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("spawn node admin listen: %v", err)
	}
	adminSrv := &http.Server{Handler: srv.AdminHandler()}
	go adminSrv.Serve(adminLn)

	f.mu.Lock()
	f.srvs[addr] = srv
	f.admins[addr] = adminSrv
	f.urls[addr] = "http://" + adminLn.Addr().String()
	f.mu.Unlock()
	return addr
}

// sources snapshots the live node admin planes for trace stitching.
func (f *fleet) sources() []obs.StitchSource {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]obs.StitchSource, 0, len(f.urls))
	for addr, url := range f.urls {
		out = append(out, obs.StitchSource{Node: addr, URL: url})
	}
	return out
}

// stop gracefully shuts down one spawned node and its admin plane.
func (f *fleet) stop(addr string) error {
	f.mu.Lock()
	srv := f.srvs[addr]
	admin := f.admins[addr]
	delete(f.srvs, addr)
	delete(f.admins, addr)
	delete(f.urls, addr)
	f.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("no spawned node at %s", addr)
	}
	if admin != nil {
		admin.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// stopAll gracefully shuts down every still-running spawned node.
func (f *fleet) stopAll() {
	f.mu.Lock()
	srvs := f.srvs
	admins := f.admins
	f.srvs = make(map[string]*pcmserve.Server)
	f.admins = make(map[string]*http.Server)
	f.urls = make(map[string]string)
	f.mu.Unlock()
	for _, admin := range admins {
		admin.Close()
	}
	var wg sync.WaitGroup
	for addr, srv := range srvs {
		wg.Add(1)
		go func(addr string, srv *pcmserve.Server) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "pcmcluster: stop %s: %v\n", addr, err)
			}
		}(addr, srv)
	}
	wg.Wait()
}

// runLoadgen drives the cluster with workers that own disjoint block
// sets, mirror acknowledged writes, and verify every read. It returns
// the number of data errors — reads that decoded cleanly but did not
// match the last-acknowledged bytes, the failure replication exists to
// prevent. fresh marks nodes this process spawned empty: only then may
// never-written blocks be required to read as zeros (an external fleet
// can hold real data from earlier runs). SIGINT/SIGTERM stops the run
// early.
func runLoadgen(c *pcmcluster.Cluster, blocks int64, clients int, duration time.Duration, readPct int, fresh bool) uint64 {
	var ops, quorumErrs, shedErrs, dataErrs atomic.Uint64

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	timer := time.AfterFunc(duration, halt)
	defer timer.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		if s, ok := <-sig; ok {
			fmt.Printf("pcmcluster: %v, stopping early\n", s)
			halt()
		}
	}()

	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*101 + 5))
			lastAcked := make(map[int64][]byte)
			data := make([]byte, pcmcluster.DataBytes)
			ownSpan := int(blocks) / clients
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(ownSpan)*clients + w)
				if rng.Intn(100) >= readPct { // write
					for i := range data {
						data[i] = byte(w*31 + iter*7 + i)
					}
					if err := c.WriteBlock(ctx, b, data); err != nil {
						if isShed(err) {
							shedErrs.Add(1)
						} else {
							quorumErrs.Add(1)
						}
						lastAcked[b] = nil // undefined until re-acknowledged
						continue
					}
					lastAcked[b] = append([]byte(nil), data...)
					ops.Add(1)
					continue
				}
				got, err := c.ReadBlock(ctx, b)
				if err != nil {
					if isShed(err) {
						shedErrs.Add(1)
					} else {
						quorumErrs.Add(1)
					}
					if errors.Is(err, pcmcluster.ErrClosed) {
						return
					}
					continue
				}
				ops.Add(1)
				want, wrote := lastAcked[b]
				switch {
				case !wrote:
					if fresh && !bytes.Equal(got, make([]byte, pcmcluster.DataBytes)) {
						dataErrs.Add(1)
					}
				case want == nil:
					// Unverifiable after an unacknowledged write.
				default:
					if !bytes.Equal(got, want) {
						dataErrs.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := ops.Load()
	fmt.Printf("loadgen: %d clients, %v: %d ops (%.0f ops/s), %d quorum errors, %d shed, data errors: %d\n",
		clients, elapsed.Round(time.Millisecond), done,
		float64(done)/elapsed.Seconds(), quorumErrs.Load(), shedErrs.Load(), dataErrs.Load())
	return dataErrs.Load()
}

// isShed classifies a failed quorum op as typed overload control —
// the server shedding load, a request outliving its deadline, or the
// client retiring its retry budget — rather than a node fault. Shed
// ops are expected output of graceful degradation (report them as
// their own class, never a test failure); the quorum error wraps the
// last replica error with %w, so errors.Is sees through it.
func isShed(err error) bool {
	return errors.Is(err, pcmserve.ErrOverloaded) ||
		errors.Is(err, pcmserve.ErrDeadlineExceeded) ||
		errors.Is(err, pcmserve.ErrRetryBudgetExhausted)
}

// report prints the cluster's own accounting — quorum traffic,
// degraded operations, repairs, hints, membership changes, Merkle
// anti-entropy, breaker transitions, and per-node state — even when
// the run was cut short.
func report(c *pcmcluster.Cluster, dataErrors uint64) {
	st := c.Stats()
	fmt.Printf("cluster: coding=%s overhead=%.2fx reads=%d writes=%d read_quorum_failures=%d write_quorum_failures=%d degraded(r/w)=%d/%d\n",
		st.Coding, st.StorageOverhead,
		st.QuorumReads, st.QuorumWrites, st.ReadQuorumFailures, st.WriteQuorumFails,
		st.DegradedReads, st.DegradedWrites)
	if st.Coding != "rf" {
		fmt.Printf("ec: reconstructions=%d reconstruct_failures=%d hedged_fanouts=%d fragment_repairs=%d realigned=%d\n",
			st.ECReconstructions, st.ECReconstructFailures, st.ECHedgedFanouts,
			st.ECFragmentRepairs, st.ECFragmentsRealigned)
	}
	fmt.Printf("repair: read=%d antientropy=%d skipped=%d failed=%d divergent(stale/corrupt)=%d/%d\n",
		st.ReadRepairs, st.AntiEntropyRepairs, st.RepairsSkipped, st.RepairsFailed,
		st.DivergentStale, st.DivergentCorrupt)
	fmt.Printf("hints: queued=%d replayed=%d dropped(stale/overflow/obsolete)=%d/%d/%d down_transitions=%d\n",
		st.HintsQueued, st.HintsReplayed, st.HintsDroppedStale, st.HintsDroppedFull,
		st.HintsDroppedObsolete, st.NodeDownTransitions)
	if st.AntiEntropyPasses > 0 || st.AntiEntropyClean > 0 || st.MerkleDigestRPCs > 0 {
		fmt.Printf("antientropy: passes=%d clean=%d unavailable=%d throttled=%d\n",
			st.AntiEntropyPasses, st.AntiEntropyClean, st.AntiEntropyUnavailable,
			st.AntiEntropyThrottled)
		fmt.Printf("merkle: digest_rpcs=%d slots_fetched=%d parts(clean/divergent/unavailable)=%d/%d/%d fallback_sweeps=%d\n",
			st.MerkleDigestRPCs, st.MerkleSlotsFetched,
			st.MerklePartsClean, st.MerklePartsDivergent, st.MerklePartsUnavailable,
			st.MerkleFallbackSweeps)
	}
	if st.OverloadEvents > 0 || st.RetryBudgetExhausted > 0 || st.BrownoutLevel > 0 {
		fmt.Printf("overload: shed_verdicts=%d retry_budget_exhausted=%d ae_paused=%d repairs_deferred=%d brownout_level=%d\n",
			st.OverloadEvents, st.RetryBudgetExhausted, st.AntiEntropyPaused,
			st.RepairsDeferred, st.BrownoutLevel)
	}
	if st.JoinsStarted > 0 || st.DrainsStarted > 0 {
		fmt.Printf("membership: joins=%d/%d drains=%d/%d aborted(j/d)=%d/%d segments=%d resumes=%d slots(pushed/skipped)=%d/%d drain_hints(replayed/stale)=%d/%d\n",
			st.JoinsCompleted, st.JoinsStarted, st.DrainsCompleted, st.DrainsStarted,
			st.JoinsAborted, st.DrainsAborted,
			st.TransferSegments, st.TransferResumes,
			st.TransferSlotsPushed, st.TransferSlotsSkipped,
			st.DrainHintsReplayed, st.DrainHintsStale)
	}
	for _, n := range st.Nodes {
		fmt.Printf("  node %s [%s]: reads=%d writes=%d errors=%d hints_pending=%d\n",
			n.Addr, n.State, n.Reads, n.Writes, n.Errors, n.HintsPending)
	}
	for _, s := range st.SLOs {
		status := "met"
		if !s.Met {
			status = "MISSED"
		}
		fmt.Printf("slo %s: objective=%.4f good=%d bad=%d burn=%.2f [%s]\n",
			s.Name, s.Objective, s.WindowGood, s.WindowBad, s.BurnRate, status)
	}
	if st.SlowQuorums > 0 {
		fmt.Printf("slow quorums: %d total, most recent:\n", st.SlowQuorums)
		entries := c.SlowQuorums()
		if len(entries) > 5 {
			entries = entries[len(entries)-5:]
		}
		for _, e := range entries {
			fmt.Printf("  %s %s block=%d quorum=%s straggler=%s class=%s trace=%s\n",
				e.Time.Format("15:04:05.000"), e.Op, e.Block,
				e.QuorumLatency.Round(time.Millisecond), e.Straggler, e.ErrClass, e.TraceID)
		}
	}
	if dataErrors > 0 {
		fmt.Fprintf(os.Stderr, "pcmcluster: FAILED: %d reads returned wrong data\n", dataErrors)
	}
}
