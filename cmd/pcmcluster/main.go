// Command pcmcluster drives a replicated cluster of pcmserve nodes
// with quorum reads and writes, verifying that every read returns the
// exact last-acknowledged data — the client-side harness for the
// internal/pcmcluster replication layer.
//
// Usage:
//
//	pcmcluster -nodes h1:7070,h2:7070,h3:7070 -duration 10s   # load external nodes
//	pcmcluster -spawn 3 -duration 5s                          # self-contained: 3 in-process nodes
//	pcmcluster -nodes ... -obs :9091                          # + admin plane (/metrics, /healthz)
//
// The load generator partitions the block space across workers; each
// worker mirrors its acknowledged writes and checks every read against
// the mirror. Quorum errors under failure are tolerated (and counted);
// a read returning wrong bytes is a data error, and any data error
// makes the process exit nonzero. Blocks this run never wrote are
// required to read as zeros only in -spawn mode (fresh nodes); an
// external -nodes fleet may legitimately hold data from earlier runs.
// The final report prints "data errors: N" even when the run is cut
// short by SIGINT.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/pcmcluster"
	"repro/internal/pcmserve"
)

func main() {
	var (
		nodesArg = flag.String("nodes", "", "comma-separated pcmserve node addresses")
		spawn    = flag.Int("spawn", 0, "spawn this many in-process loopback nodes instead of -nodes")
		mb       = flag.Float64("mb", 1, "spawned nodes: per-node capacity in MiB")
		shards   = flag.Int("shards", 4, "spawned nodes: device shards per node")

		rf = flag.Int("rf", 0, "replication factor (default min(3, nodes))")
		w  = flag.Int("w", 0, "write quorum (default rf/2+1)")
		r  = flag.Int("r", 0, "read quorum (default rf/2+1)")

		clients  = flag.Int("clients", 4, "concurrent loadgen workers")
		duration = flag.Duration("duration", 3*time.Second, "how long to run")
		readPct  = flag.Int("readpct", 50, "percentage of ops that are reads")
		span     = flag.Int64("blocks", 0, "restrict the loadgen to the first N blocks (0 = all)")

		antiEntropy = flag.Duration("antientropy", 5*time.Millisecond, "per-block anti-entropy sweep cadence (0 disables)")
		hintReplay  = flag.Duration("hint-replay", 50*time.Millisecond, "hinted-handoff replay cadence")
		probe       = flag.Duration("probe", 100*time.Millisecond, "down-node half-open probe interval")
		opTimeout   = flag.Duration("optimeout", 2*time.Second, "per-replica operation timeout")
		seed        = flag.Uint64("seed", 0, "seed for version tags, retry jitter, and spawned devices (0 = random per process)")
		obsAddr     = flag.String("obs", "", "admin HTTP listen address for /metrics and /healthz (empty disables)")
		version     = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("pcmcluster", obs.BuildInfo())
		return
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pcmcluster: "+format+"\n", args...)
		os.Exit(2)
	}
	switch {
	case *nodesArg == "" && *spawn == 0:
		fail("need -nodes or -spawn")
	case *nodesArg != "" && *spawn > 0:
		fail("-nodes and -spawn are mutually exclusive")
	case *spawn < 0:
		fail("-spawn must not be negative, got %d", *spawn)
	case *mb <= 0:
		fail("-mb must be positive, got %g", *mb)
	case *shards < 1:
		fail("-shards must be at least 1, got %d", *shards)
	case *rf < 0 || *w < 0 || *r < 0:
		fail("-rf, -w, -r must not be negative")
	case *clients < 1:
		fail("-clients must be at least 1, got %d", *clients)
	case *duration <= 0:
		fail("-duration must be positive, got %v", *duration)
	case *readPct < 0 || *readPct > 100:
		fail("-readpct must be in [0,100], got %d", *readPct)
	case *span < 0:
		fail("-blocks must not be negative, got %d", *span)
	case *hintReplay <= 0:
		fail("-hint-replay must be positive, got %v", *hintReplay)
	case *probe <= 0:
		fail("-probe must be positive, got %v", *probe)
	case *opTimeout <= 0:
		fail("-optimeout must be positive, got %v", *opTimeout)
	case *antiEntropy < 0:
		fail("-antientropy must not be negative, got %v", *antiEntropy)
	}

	var addrs []string
	if *spawn > 0 {
		devSeed := *seed
		if devSeed == 0 {
			devSeed = 1 // device sim wants a deterministic nonzero seed
		}
		for i := 0; i < *spawn; i++ {
			addrs = append(addrs, spawnNode(fail, *mb, *shards, devSeed+uint64(i)*1000))
		}
		fmt.Printf("pcmcluster: spawned %d loopback nodes: %s\n", *spawn, strings.Join(addrs, ", "))
	} else {
		for _, a := range strings.Split(*nodesArg, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				fail("-nodes contains an empty address: %q", *nodesArg)
			}
			addrs = append(addrs, a)
		}
	}

	c, err := pcmcluster.New(pcmcluster.Config{
		Nodes:               addrs,
		ReplicationFactor:   *rf,
		WriteQuorum:         *w,
		ReadQuorum:          *r,
		OpTimeout:           *opTimeout,
		ProbeInterval:       *probe,
		HintReplayInterval:  *hintReplay,
		AntiEntropyInterval: *antiEntropy,
		Seed:                *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcmcluster:", err)
		os.Exit(1)
	}
	defer c.Close()

	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs listen:", err)
			os.Exit(1)
		}
		obsSrv := &http.Server{Handler: obs.AdminHandler(obs.AdminConfig{
			Registry: c.Registry(),
			Health:   c.Health,
		})}
		go obsSrv.Serve(ln)
		defer obsSrv.Close()
		fmt.Printf("pcmcluster: admin plane (metrics, healthz) on %s\n", ln.Addr())
	}

	blocks := c.Blocks()
	if *span > 0 && *span < blocks {
		blocks = *span
	}
	if blocks < int64(*clients) {
		fail("only %d blocks for %d clients; shrink -clients or grow the nodes", blocks, *clients)
	}
	st := c.Stats()
	fmt.Printf("pcmcluster: %d nodes, rf=%d w=%d r=%d, %d blocks (%d in play)\n",
		len(addrs), st.ReplicationFactor, st.WriteQuorum, st.ReadQuorum, c.Blocks(), blocks)

	dataErrors := runLoadgen(c, blocks, *clients, *duration, *readPct, *spawn > 0)

	report(c, dataErrors)
	if dataErrors > 0 {
		os.Exit(1)
	}
}

// spawnNode brings up one in-process pcmserve node on a loopback port
// and returns its address. The node lives until process exit.
func spawnNode(fail func(string, ...any), mb float64, shards int, seed uint64) string {
	blocksPerShard := int(mb*1024*1024) / 64 / shards
	if blocksPerShard < 1 {
		blocksPerShard = 1
	}
	g, err := pcmserve.NewShards(pcmserve.ShardsConfig{
		Shards: shards,
		Device: device.Config{Blocks: blocksPerShard, Seed: seed, DisableWearout: true},
	})
	if err != nil {
		fail("spawn node: %v", err)
	}
	srv := pcmserve.NewServer(g, pcmserve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("spawn node listen: %v", err)
	}
	go srv.Serve(ln)
	return ln.Addr().String()
}

// runLoadgen drives the cluster with workers that own disjoint block
// sets, mirror acknowledged writes, and verify every read. It returns
// the number of data errors — reads that decoded cleanly but did not
// match the last-acknowledged bytes, the failure replication exists to
// prevent. fresh marks nodes this process spawned empty: only then may
// never-written blocks be required to read as zeros (an external fleet
// can hold real data from earlier runs). SIGINT/SIGTERM stops the run
// early.
func runLoadgen(c *pcmcluster.Cluster, blocks int64, clients int, duration time.Duration, readPct int, fresh bool) uint64 {
	var ops, quorumErrs, dataErrs atomic.Uint64

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	timer := time.AfterFunc(duration, halt)
	defer timer.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		if s, ok := <-sig; ok {
			fmt.Printf("pcmcluster: %v, stopping early\n", s)
			halt()
		}
	}()

	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*101 + 5))
			lastAcked := make(map[int64][]byte)
			data := make([]byte, pcmcluster.DataBytes)
			ownSpan := int(blocks) / clients
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(ownSpan)*clients + w)
				if rng.Intn(100) >= readPct { // write
					for i := range data {
						data[i] = byte(w*31 + iter*7 + i)
					}
					if err := c.WriteBlock(ctx, b, data); err != nil {
						quorumErrs.Add(1)
						lastAcked[b] = nil // undefined until re-acknowledged
						continue
					}
					lastAcked[b] = append([]byte(nil), data...)
					ops.Add(1)
					continue
				}
				got, err := c.ReadBlock(ctx, b)
				if err != nil {
					quorumErrs.Add(1)
					if errors.Is(err, pcmcluster.ErrClosed) {
						return
					}
					continue
				}
				ops.Add(1)
				want, wrote := lastAcked[b]
				switch {
				case !wrote:
					if fresh && !bytes.Equal(got, make([]byte, pcmcluster.DataBytes)) {
						dataErrs.Add(1)
					}
				case want == nil:
					// Unverifiable after an unacknowledged write.
				default:
					if !bytes.Equal(got, want) {
						dataErrs.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := ops.Load()
	fmt.Printf("loadgen: %d clients, %v: %d ops (%.0f ops/s), %d quorum errors, data errors: %d\n",
		clients, elapsed.Round(time.Millisecond), done,
		float64(done)/elapsed.Seconds(), quorumErrs.Load(), dataErrs.Load())
	return dataErrs.Load()
}

// report prints the cluster's own accounting — quorum traffic,
// degraded operations, repairs, hints, breaker transitions, and
// per-node state — even when the run was cut short.
func report(c *pcmcluster.Cluster, dataErrors uint64) {
	st := c.Stats()
	fmt.Printf("cluster: reads=%d writes=%d read_quorum_failures=%d write_quorum_failures=%d degraded(r/w)=%d/%d\n",
		st.QuorumReads, st.QuorumWrites, st.ReadQuorumFailures, st.WriteQuorumFails,
		st.DegradedReads, st.DegradedWrites)
	fmt.Printf("repair: read=%d antientropy=%d skipped=%d failed=%d divergent(stale/corrupt)=%d/%d\n",
		st.ReadRepairs, st.AntiEntropyRepairs, st.RepairsSkipped, st.RepairsFailed,
		st.DivergentStale, st.DivergentCorrupt)
	fmt.Printf("hints: queued=%d replayed=%d dropped(stale/overflow)=%d/%d down_transitions=%d\n",
		st.HintsQueued, st.HintsReplayed, st.HintsDroppedStale, st.HintsDroppedFull,
		st.NodeDownTransitions)
	if st.AntiEntropyPasses > 0 || st.AntiEntropyClean > 0 {
		fmt.Printf("antientropy: passes=%d clean=%d unavailable=%d\n",
			st.AntiEntropyPasses, st.AntiEntropyClean, st.AntiEntropyUnavailable)
	}
	for _, n := range st.Nodes {
		fmt.Printf("  node %s [%s]: reads=%d writes=%d errors=%d hints_pending=%d\n",
			n.Addr, n.State, n.Reads, n.Writes, n.Errors, n.HintsPending)
	}
	if dataErrors > 0 {
		fmt.Fprintf(os.Stderr, "pcmcluster: FAILED: %d reads returned wrong data\n", dataErrors)
	}
}
