// Command pcmdev exercises the composed byte-addressable PCM device:
// it stores a file (or generated data), optionally lets simulated years
// pass without power, reads everything back, and verifies integrity —
// a dd-style smoke test of the full stack.
//
// Usage:
//
//	pcmdev -kind 3LC -mb 1 -advance 10y
//	pcmdev -kind 4LCo -mb 1 -advance 1d          # decays: reported, not silent
//	pcmdev -kind 3LC -in data.bin -out back.bin
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/rng"
)

func parseSpan(s string) (float64, error) {
	if s == "" || s == "0" {
		return 0, nil
	}
	unit := s[len(s)-1]
	mult := map[byte]float64{'s': 1, 'm': 60, 'h': 3600, 'd': 86400, 'y': 365.25 * 86400}[unit]
	if mult == 0 {
		return 0, fmt.Errorf("bad duration %q (use s/m/h/d/y)", s)
	}
	v, err := strconv.ParseFloat(s[:len(s)-1], 64)
	return v * mult, err
}

func main() {
	var (
		kindArg = flag.String("kind", "3LC", "3LC, 4LCo, or permutation")
		mb      = flag.Float64("mb", 0.25, "device size in MiB (when no -in file)")
		inFile  = flag.String("in", "", "file to store (sized to fit)")
		outFile = flag.String("out", "", "write recovered data here")
		advance = flag.String("advance", "10y", "unpowered time before readback (s/m/h/d/y)")
		seed    = flag.Uint64("seed", 1, "random seed")
		level   = flag.Bool("wearlevel", true, "enable start-gap wear leveling")
		reserve = flag.Int("reserve", 4, "remapping reserve blocks")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("pcmdev", obs.BuildInfo())
		return
	}

	kinds := map[string]device.ArchKind{
		"3LC": device.ThreeLC, "4LCo": device.FourLC, "permutation": device.Permutation,
	}
	kind, ok := kinds[*kindArg]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kindArg)
		os.Exit(2)
	}

	var data []byte
	if *inFile != "" {
		var err error
		data, err = os.ReadFile(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		data = make([]byte, int(*mb*1024*1024))
		r := rng.New(*seed)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
	}
	blocks := (len(data) + core.BlockBytes - 1) / core.BlockBytes
	dev, err := device.New(device.Config{
		Kind: kind, Blocks: blocks, Seed: *seed,
		WearLeveling: *level, ReserveBlocks: *reserve,
		DisableWearout: false,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("device: %s, %d blocks (%.2f MiB), %.2f bits/cell\n",
		dev.Name(), blocks, float64(dev.Size())/(1<<20), dev.Density())

	if _, err := dev.WriteAt(data, 0); err != nil {
		fmt.Fprintln(os.Stderr, "store:", err)
		os.Exit(1)
	}
	fmt.Printf("stored %d bytes\n", len(data))

	span, err := parseSpan(*advance)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if span > 0 {
		if err := dev.Advance(span); err != nil {
			fmt.Fprintln(os.Stderr, "advance:", err)
			os.Exit(1)
		}
		fmt.Printf("advanced %s without power (refresh stats: %+v)\n", *advance, dev.RefreshStats())
	}

	back := make([]byte, len(data))
	if _, err := dev.ReadAt(back, 0); err != nil {
		fmt.Printf("readback reported error: %v\n", err)
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, back, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if bytes.Equal(back, data) {
		fmt.Println("verify: all bytes intact")
		return
	}
	diff := 0
	for i := range data {
		if back[i] != data[i] {
			diff++
		}
	}
	fmt.Printf("verify: %d/%d bytes corrupted\n", diff, len(data))
	os.Exit(1)
}
