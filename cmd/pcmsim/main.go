// Command pcmsim runs the memory-system simulator on one workload and
// design point and prints the raw statistics — the building block of
// Figure 16 for interactive exploration.
//
// Usage:
//
//	pcmsim -workload mcf -design 3LC [-ops 1000000] [-refresh-min 17]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	var (
		workload   = flag.String("workload", "STREAM", "one of STREAM, bzip2, mcf, namd, libquantum, lbm")
		design     = flag.String("design", "4LC-REF", "one of 4LC-REF, 4LC-REF-OPT, 4LC-NO-REF, 3LC")
		ops        = flag.Int("ops", 500_000, "memory operations to simulate")
		seed       = flag.Uint64("seed", 1, "trace seed")
		refreshMin = flag.Int("refresh-min", 17, "refresh interval in minutes (4LC-REF designs)")
		record     = flag.String("record", "", "record the synthetic trace to this file and exit")
		traceFile  = flag.String("trace", "", "replay a recorded trace file instead of a synthetic workload")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("pcmsim", obs.BuildInfo())
		return
	}

	p, err := trace.ProfileByName(*workload)
	if err != nil && *traceFile == "" {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := trace.Write(f, trace.New(p, *ops, *seed))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d operations of %s to %s\n", n, p.WorkloadName, *record)
		return
	}
	var d memsim.Design
	found := false
	for _, cand := range memsim.Designs() {
		if cand.String() == *design {
			d, found = cand, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
	cfg := memsim.ConfigFor(d)
	cfg.RefreshIntervalNs = (time.Duration(*refreshMin) * time.Minute).Nanoseconds()

	var gen trace.Generator
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		gen, err = trace.Open(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		gen = trace.New(p, *ops, *seed)
	}
	s := memsim.Run(cfg, gen)
	fmt.Printf("workload         %s\n", gen.Name())
	fmt.Printf("design           %s\n", d)
	fmt.Printf("instructions     %d\n", s.Instructions)
	fmt.Printf("memory ops       %d\n", s.MemOps)
	fmt.Printf("execution time   %.3f ms\n", float64(s.ExecNs)/1e6)
	fmt.Printf("IPC              %.3f\n", s.IPC(cfg))
	fmt.Printf("L1 hit rate      %.3f\n", float64(s.L1Hits)/float64(s.L1Hits+s.L1Misses))
	fmt.Printf("L2 hit rate      %.3f\n", float64(s.L2Hits)/float64(s.L2Hits+s.L2Misses))
	fmt.Printf("PCM reads        %d (avg latency %.0f ns)\n", s.MemReads, s.AvgReadLatencyNs())
	fmt.Printf("PCM writes       %d\n", s.MemWrites)
	fmt.Printf("refresh ops      %d\n", s.RefreshOps)
	fmt.Printf("energy           %.1f uJ (rd %.1f, wr %.1f, ref %.1f, static %.1f)\n",
		s.TotalEnergyNJ()/1e3, s.EnergyRead/1e3, s.EnergyWrite/1e3, s.EnergyRefresh/1e3, s.EnergyStatic/1e3)
	fmt.Printf("average power    %.4f W\n", s.AvgPowerW())
}
