// Command driftcalc computes cell error rates for any of the paper's
// level mappings at arbitrary retention times, by deterministic
// quadrature and (optionally) Monte Carlo.
//
// Usage:
//
//	driftcalc -mapping 3LCo -t 10y
//	driftcalc -mapping 4LCn -t 17m -samples 100000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/levels"
	"repro/internal/obs"
)

// parseDuration accepts s/m/h/d/y suffixes.
func parseDuration(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	unit := s[len(s)-1]
	mult := 1.0
	switch unit {
	case 's':
		mult = 1
	case 'm':
		mult = 60
	case 'h':
		mult = 3600
	case 'd':
		mult = 86400
	case 'y':
		mult = 365.25 * 86400
	default:
		return strconv.ParseFloat(s, 64)
	}
	v, err := strconv.ParseFloat(s[:len(s)-1], 64)
	return v * mult, err
}

func main() {
	var (
		name    = flag.String("mapping", "3LCo", "4LCn, 4LCs, 4LCo, 3LCn, or 3LCo")
		tArg    = flag.String("t", "17m", "retention time (suffix s/m/h/d/y)")
		samples = flag.Int64("samples", 0, "optional Monte Carlo sample count")
		seed    = flag.Uint64("seed", 1, "Monte Carlo seed")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("driftcalc", obs.BuildInfo())
		return
	}

	var m levels.Mapping
	found := false
	for _, cand := range levels.All() {
		if strings.EqualFold(cand.Name, *name) {
			m, found = cand, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown mapping %q\n", *name)
		os.Exit(2)
	}
	t, err := parseDuration(*tArg)
	if err != nil || t <= 0 {
		fmt.Fprintf(os.Stderr, "bad time %q: %v\n", *tArg, err)
		os.Exit(2)
	}

	fmt.Printf("mapping   %s (levels %d)\n", m.Name, m.Levels())
	fmt.Printf("nominals  %v\n", m.Nominals)
	fmt.Printf("thresholds %v\n", m.Thresholds)
	fmt.Printf("time      %.4g s\n", t)
	fmt.Printf("CER quad  %.4E\n", m.QuadCER(t))
	if *samples > 0 {
		res := m.MCCERCurve([]float64{t}, *samples, *seed, 0)
		fmt.Printf("CER MC    %.4E (floor %.1E)\n", res.CER[0], res.Floor())
	}
}
