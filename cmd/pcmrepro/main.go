// Command pcmrepro regenerates the paper's tables and figures.
//
// Usage:
//
//	pcmrepro -list
//	pcmrepro [-samples N] [-memops N] [-seed S] [-id F8] [-id T3] ...
//
// Without -id it runs every experiment in paper order. -samples controls
// Monte Carlo depth (the paper used 1e9; the default 1e7 keeps a full run
// under a minute on a laptop).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

type idList []string

func (l *idList) String() string { return strings.Join(*l, ",") }
func (l *idList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		samples  = flag.Int64("samples", 10_000_000, "Monte Carlo samples for drift experiments")
		memops   = flag.Int("memops", 200_000, "memory operations per Figure 16 simulation")
		seed     = flag.Uint64("seed", 20130817, "random seed")
		workers  = flag.Int("workers", 0, "Monte Carlo workers (0 = all cores)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Bool("parallel", false, "run independent experiments concurrently (output stays in order)")
		version  = flag.Bool("version", false, "print build information and exit")
		ids      idList
	)
	flag.Var(&ids, "id", "experiment id to run (repeatable); default all")
	flag.Parse()
	if *version {
		fmt.Println("pcmrepro", obs.BuildInfo())
		return
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ID, s.Title)
		}
		return
	}

	opts := experiments.Options{
		MCSamples: *samples,
		Seed:      *seed,
		Workers:   *workers,
		MemsimOps: *memops,
	}

	specs := experiments.All()
	if len(ids) > 0 {
		specs = specs[:0]
		for _, id := range ids {
			s, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}
	render := func(res experiments.Result) string {
		if *csv {
			return fmt.Sprintf("# %s: %s\n%s\n", res.ID, res.Title, res.CSV())
		}
		return res.Format() + "\n"
	}

	if !*parallel {
		for _, s := range specs {
			fmt.Print(render(s.Run(opts)))
		}
		return
	}
	// Fan the independent experiments across cores; print in input order.
	outputs := make([]chan string, len(specs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, s := range specs {
		outputs[i] = make(chan string, 1)
		go func(s experiments.Spec, out chan<- string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			out <- render(s.Run(opts))
		}(s, outputs[i])
	}
	for _, ch := range outputs {
		fmt.Print(<-ch)
	}
}
