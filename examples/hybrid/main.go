// Hybrid: the deployment the paper's Section 7/8 discussion points at —
// a two-tier PCM system using both designs for what each is good at:
//
//   - a 4LCo tier as dense *volatile* working memory, kept alive by the
//     17-minute refresh manager (its capacity advantage is ~7%);
//   - a 3LC tier as genuinely *nonvolatile* storage, needing no refresh.
//
// The demo runs a workload phase that updates working memory and
// periodically commits results to the persistent tier, then loses power
// for a year: the working tier's content is gone (refresh stopped, drift
// won), while every committed result is recovered from the 3LC tier.
//
//	go run ./examples/hybrid
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/pcmarray"
	"repro/internal/refresh"
)

const (
	workBlocks    = 24
	persistBlocks = 8
	phaseSeconds  = 17 * 60 // one refresh interval per phase
	phases        = 6
)

// commitRecord summarizes one phase's work for the persistent tier.
func commitRecord(phase int, checksum uint64) []byte {
	data := make([]byte, core.BlockBytes)
	copy(data, fmt.Sprintf("phase %d committed", phase))
	binary.LittleEndian.PutUint64(data[48:], checksum)
	binary.LittleEndian.PutUint64(data[56:], uint64(phase))
	return data
}

func run(w io.Writer) error {
	work := core.NewFourLC(workBlocks, core.FourLCConfig{Array: pcmarray.DefaultOptions(21)})
	persist := core.NewThreeLC(persistBlocks, core.ThreeLCConfig{Array: pcmarray.DefaultOptions(22)})
	mgr := refresh.NewManager(work, 17*60)

	fmt.Fprintf(w, "working tier:    %s (%.2f bits/cell)\n", work.Name(), work.Density())
	fmt.Fprintf(w, "persistent tier: %s (%.2f bits/cell)\n", persist.Name(), persist.Density())

	var checksums []uint64
	for phase := 0; phase < phases; phase++ {
		// Update every working-tier block (the "computation").
		var sum uint64
		for b := 0; b < workBlocks; b++ {
			data := make([]byte, core.BlockBytes)
			for i := range data {
				data[i] = byte(phase*31 + b*7 + i)
				sum = sum*1099511628211 + uint64(data[i])
			}
			if err := work.Write(b, data); err != nil {
				return fmt.Errorf("phase %d working write: %w", phase, err)
			}
		}
		// Commit the phase summary to the persistent tier.
		if err := persist.Write(phase%persistBlocks, commitRecord(phase, sum)); err != nil {
			return fmt.Errorf("phase %d commit: %w", phase, err)
		}
		checksums = append(checksums, sum)
		// Time passes; the refresh manager keeps the 4LC tier alive
		// (the 3LC tier ages too — it just does not care).
		if err := mgr.Advance(phaseSeconds); err != nil {
			return err
		}
		persist.Array().Advance(phaseSeconds)
		// Working memory must still be intact mid-run.
		got, err := work.Read(0)
		if err != nil {
			return fmt.Errorf("phase %d working tier decayed under refresh: %w", phase, err)
		}
		_ = got
	}
	fmt.Fprintf(w, "ran %d phases; refresh stats: %+v\n", phases, mgr.Stats())

	// Power loss: refresh stops; a year passes.
	const year = 365.25 * 86400
	work.Array().Advance(year)
	persist.Array().Advance(year)
	fmt.Fprintln(w, "...power lost for one year...")

	// The volatile tier decayed.
	lost := 0
	for b := 0; b < workBlocks; b++ {
		if _, err := work.Read(b); err != nil {
			lost++
		}
	}
	fmt.Fprintf(w, "working tier after a year: %d/%d blocks unreadable (expected: most)\n", lost, workBlocks)

	// The persistent tier recovers every commit.
	recovered := 0
	for phase := phases - persistBlocks; phase < phases; phase++ {
		if phase < 0 {
			continue
		}
		got, err := persist.Read(phase % persistBlocks)
		if err != nil {
			return fmt.Errorf("persistent read of phase %d: %w", phase, err)
		}
		want := commitRecord(phase, checksums[phase])
		if !bytes.Equal(got, want) {
			return fmt.Errorf("phase %d commit corrupted", phase)
		}
		recovered++
	}
	fmt.Fprintf(w, "persistent tier: recovered %d/%d commits intact\n", recovered, min(phases, persistBlocks))
	if lost == 0 {
		return fmt.Errorf("volatile tier survived a year unpowered; drift model inert")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
