package main

import (
	"strings"
	"testing"
)

func TestHybridExample(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "recovered 6/6 commits intact") {
		t.Errorf("persistent tier recovery missing:\n%s", out)
	}
	if !strings.Contains(out, "power lost") {
		t.Errorf("power-loss phase missing:\n%s", out)
	}
}
