// Retention: an unpowered data-retention study across architectures —
// the experiment behind the paper's nonvolatility claim. Populates 3LC,
// 4LCo, and permutation devices, ages them through a sweep of idle times
// from one hour to thirty years, and reports the fraction of blocks that
// still read back correctly (no refresh anywhere).
//
//	go run ./examples/retention
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

const blocksPerDevice = 48

var idlePoints = []struct {
	label   string
	seconds float64
}{
	{"1 hour", 3600},
	{"1 day", 86400},
	{"12 days", 12 * 86400},
	{"1 year", 365.25 * 86400},
	{"10 years", 10 * 365.25 * 86400},
	{"30 years", 30 * 365.25 * 86400},
}

func payload(b int) []byte {
	data := make([]byte, core.BlockBytes)
	for i := range data {
		data[i] = byte(b*31 + i*7 + 3)
	}
	return data
}

// survivors writes every block, ages the device once, and counts blocks
// that read back intact.
func survivors(mk func(seed uint64) core.Arch, seed uint64, idle float64) (int, error) {
	dev := mk(seed)
	for b := 0; b < dev.Blocks(); b++ {
		if err := dev.Write(b, payload(b)); err != nil {
			return 0, err
		}
	}
	dev.Array().Advance(idle)
	ok := 0
	for b := 0; b < dev.Blocks(); b++ {
		got, err := dev.Read(b)
		if err == nil && bytes.Equal(got, payload(b)) {
			ok++
		}
	}
	return ok, nil
}

func run(w io.Writer) error {
	noWear := func(seed uint64) pcmarray.Options {
		o := pcmarray.DefaultOptions(seed)
		o.EnduranceMean = 0
		return o
	}
	archs := []struct {
		name string
		mk   func(seed uint64) core.Arch
	}{
		{"3LC", func(s uint64) core.Arch {
			return core.NewThreeLC(blocksPerDevice, core.ThreeLCConfig{Array: noWear(s)})
		}},
		{"4LCo", func(s uint64) core.Arch {
			return core.NewFourLC(blocksPerDevice, core.FourLCConfig{Array: noWear(s)})
		}},
		{"permutation", func(s uint64) core.Arch {
			return core.NewPermutation(blocksPerDevice, noWear(s))
		}},
	}

	fmt.Fprintf(w, "%-12s", "idle time")
	for _, a := range archs {
		fmt.Fprintf(w, "  %-12s", a.name)
	}
	fmt.Fprintln(w)

	finals := map[string]int{}
	for _, pt := range idlePoints {
		fmt.Fprintf(w, "%-12s", pt.label)
		for i, a := range archs {
			ok, err := survivors(a.mk, uint64(1000+i), pt.seconds)
			if err != nil {
				return fmt.Errorf("%s at %s: %w", a.name, pt.label, err)
			}
			fmt.Fprintf(w, "  %3d/%-3d     ", ok, blocksPerDevice)
			finals[a.name] = ok
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\n(3LC holds every block for decades; 4LC decays within days;")
	fmt.Fprintln(w, " permutation coding sits in between — Figure 8 in device form.)")
	if finals["3LC"] != blocksPerDevice {
		return fmt.Errorf("3LC lost blocks at 30 years: %d", finals["3LC"])
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
