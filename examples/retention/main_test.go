package main

import (
	"strings"
	"testing"
)

func TestRetentionExample(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	lines := strings.Split(out, "\n")
	// The one-hour row must show full survival everywhere; find it.
	foundHour := false
	for _, l := range lines {
		if strings.HasPrefix(l, "1 hour") {
			foundHour = true
			if strings.Count(l, "48/48") != 3 {
				t.Errorf("one-hour row shows losses: %q", l)
			}
		}
	}
	if !foundHour {
		t.Fatalf("missing 1 hour row:\n%s", out)
	}
}
