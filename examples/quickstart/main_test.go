package main

import (
	"strings"
	"testing"
)

func TestQuickstart(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"64/64 blocks intact", "pairs marked", "ten years"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
