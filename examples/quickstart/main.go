// Quickstart: store data in the proposed three-level-cell PCM, survive
// wearout failures and ten unpowered years, and read it back.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/pcmarray"
	"repro/internal/wearout"
)

func run(w io.Writer) error {
	// A small 3LC device: 64 blocks of 64 bytes, the paper's proposed
	// architecture (3-ON-2 + BCH-1 + mark-and-spare over the optimal
	// three-level mapping).
	dev := core.NewThreeLC(64, core.ThreeLCConfig{
		Array: pcmarray.DefaultOptions(42),
	})
	fmt.Fprintf(w, "device: %s\n", dev.Name())
	fmt.Fprintf(w, "blocks: %d, cells/block: %d, density: %.3f bits/cell\n",
		dev.Blocks(), dev.CellsPerBlock(), dev.Density())

	// Write a recognizable payload into every block.
	payload := func(b int) []byte {
		data := make([]byte, core.BlockBytes)
		copy(data, fmt.Sprintf("block %02d: practical nonvolatile MLC-PCM", b))
		return data
	}
	for b := 0; b < dev.Blocks(); b++ {
		if err := dev.Write(b, payload(b)); err != nil {
			return fmt.Errorf("write block %d: %w", b, err)
		}
	}
	fmt.Fprintf(w, "wrote %d blocks\n", dev.Blocks())

	// Injure block 0: three cells stick at the highest resistance. The
	// next write marks their pairs INV and shifts spares in.
	for _, cell := range []int{10, 100, 200} {
		dev.Array().InjectFailure(cell, wearout.StuckReset)
	}
	if err := dev.Write(0, payload(0)); err != nil {
		return fmt.Errorf("rewrite with failures: %w", err)
	}
	fmt.Fprintf(w, "block 0 survived wearout: %d pairs marked, %d spares free\n",
		dev.MarkedPairs(0), 6-dev.MarkedPairs(0))

	// Power off for ten years: no refresh, no power, only drift.
	const tenYears = 10 * 365.25 * 86400
	dev.Array().Advance(tenYears)
	fmt.Fprintln(w, "...ten years pass without power...")

	bad := 0
	for b := 0; b < dev.Blocks(); b++ {
		got, err := dev.Read(b)
		if err != nil || !bytes.Equal(got, payload(b)) {
			bad++
		}
	}
	fmt.Fprintf(w, "after 10 years: %d/%d blocks intact\n", dev.Blocks()-bad, dev.Blocks())
	if bad > 0 {
		return fmt.Errorf("%d blocks lost data", bad)
	}
	first, err := dev.Read(0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "block 0 reads: %q\n", bytes.TrimRight(first, "\x00"))
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
