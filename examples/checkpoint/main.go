// Checkpoint: in-memory HPC checkpointing onto nonvolatile MLC-PCM — one
// of the paper's motivating uses (Section 1). An iterative Jacobi stencil
// computation checkpoints its state into a 3LC PCM device, "crashes", and
// restarts from the persisted checkpoint — including after the machine
// sat powered off for a year. The same protocol against an unrefreshed
// four-level-cell device demonstrates why drift makes naive 4LC-PCM
// unsuitable as a checkpoint target.
//
//	go run ./examples/checkpoint
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

const (
	gridN      = 128 // unknowns in the 1-D stencil
	iterations = 400
	checkEvery = 100
)

// jacobiStep relaxes u once toward the solution of u'' = 0 with fixed
// boundary values.
func jacobiStep(u []float64) {
	prev := u[0]
	for i := 1; i < len(u)-1; i++ {
		cur := u[i]
		u[i] = 0.5 * (prev + u[i+1])
		prev = cur
	}
}

// checkpointer persists a float64 grid plus an iteration counter into
// consecutive 64-byte PCM blocks.
type checkpointer struct {
	dev core.Arch
}

// blocksNeeded covers the grid and an 8-byte header.
func blocksNeeded() int {
	return (8 + gridN*8 + core.BlockBytes - 1) / core.BlockBytes
}

func (c checkpointer) save(iter int, u []float64) error {
	buf := make([]byte, blocksNeeded()*core.BlockBytes)
	binary.LittleEndian.PutUint64(buf, uint64(iter))
	for i, v := range u {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	for b := 0; b < blocksNeeded(); b++ {
		if err := c.dev.Write(b, buf[b*core.BlockBytes:(b+1)*core.BlockBytes]); err != nil {
			return err
		}
	}
	return nil
}

func (c checkpointer) restore() (iter int, u []float64, err error) {
	buf := make([]byte, 0, blocksNeeded()*core.BlockBytes)
	for b := 0; b < blocksNeeded(); b++ {
		blk, err := c.dev.Read(b)
		if err != nil {
			return 0, nil, fmt.Errorf("block %d: %w", b, err)
		}
		buf = append(buf, blk...)
	}
	iter = int(binary.LittleEndian.Uint64(buf))
	u = make([]float64, gridN)
	for i := range u {
		u[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8+8*i:]))
	}
	return iter, u, nil
}

// residual measures distance from the linear steady state.
func residual(u []float64) float64 {
	r := 0.0
	for i := 1; i < len(u)-1; i++ {
		r += math.Abs(u[i] - 0.5*(u[i-1]+u[i+1]))
	}
	return r
}

func freshGrid() []float64 {
	u := make([]float64, gridN)
	u[gridN-1] = 1 // boundary condition
	return u
}

func runOn(w io.Writer, name string, dev core.Arch, idleSeconds float64) (recovered bool, err error) {
	cp := checkpointer{dev}
	u := freshGrid()

	// Phase 1: compute with periodic checkpoints, then "crash" midway.
	crashAt := iterations / 2
	for it := 1; it <= crashAt; it++ {
		jacobiStep(u)
		if it%checkEvery == 0 {
			if err := cp.save(it, u); err != nil {
				return false, fmt.Errorf("checkpoint at %d: %w", it, err)
			}
		}
	}
	fmt.Fprintf(w, "[%s] crash at iteration %d (last checkpoint at %d)\n",
		name, crashAt, crashAt/checkEvery*checkEvery)

	// The machine sits powered off; only drift acts on the cells.
	dev.Array().Advance(idleSeconds)

	// Phase 2: restart from the checkpoint.
	it, u2, err := cp.restore()
	if err != nil {
		fmt.Fprintf(w, "[%s] checkpoint UNRECOVERABLE after %.0f days idle: %v\n",
			name, idleSeconds/86400, err)
		return false, nil
	}
	for ; it < iterations; it++ {
		jacobiStep(u2)
	}
	fmt.Fprintf(w, "[%s] recovered and finished: residual %.2e after %d iterations\n",
		name, residual(u2), iterations)
	return true, nil
}

// newTestDevice builds the device used by the example and its tests.
func newTestDevice() core.Arch {
	return core.NewThreeLC(blocksNeeded(), core.ThreeLCConfig{Array: pcmarray.DefaultOptions(99)})
}

func run(w io.Writer) error {
	idle := 365.25 * 86400.0 // one year powered off

	three := core.NewThreeLC(blocksNeeded(), core.ThreeLCConfig{Array: pcmarray.DefaultOptions(7)})
	okThree, err := runOn(w, "3LC ", three, idle)
	if err != nil {
		return err
	}

	four := core.NewFourLC(blocksNeeded(), core.FourLCConfig{Array: pcmarray.DefaultOptions(7)})
	okFour, err := runOn(w, "4LCo", four, idle)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\n3LC checkpoint survived a year unpowered: %v\n", okThree)
	fmt.Fprintf(w, "4LC checkpoint survived a year unpowered: %v (needs 17-minute refresh to be usable)\n", okFour)
	if !okThree {
		return fmt.Errorf("3LC checkpoint failed to survive")
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
