package main

import (
	"strings"
	"testing"
)

func TestCheckpointExample(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "3LC checkpoint survived a year unpowered: true") {
		t.Errorf("3LC recovery missing:\n%s", out)
	}
	if !strings.Contains(out, "crash at iteration") {
		t.Errorf("crash phase missing:\n%s", out)
	}
}

func TestJacobiConverges(t *testing.T) {
	u := freshGrid()
	// Jacobi needs O(N^2) sweeps on an N-point grid.
	for i := 0; i < 120000; i++ {
		jacobiStep(u)
	}
	if r := residual(u); r > 1e-6 {
		t.Fatalf("residual %v after long relaxation", r)
	}
	// Steady state of u''=0 with u(0)=0, u(N-1)=1 is linear.
	mid := u[gridN/2]
	if mid < 0.4 || mid > 0.6 {
		t.Fatalf("midpoint %v not near 0.5", mid)
	}
}

func TestCheckpointRoundTripNoAging(t *testing.T) {
	// Pure save/restore correctness, no drift.
	u := freshGrid()
	for i := 0; i < 37; i++ {
		jacobiStep(u)
	}
	dev := newTestDevice()
	cp := checkpointer{dev}
	if err := cp.save(37, u); err != nil {
		t.Fatal(err)
	}
	it, got, err := cp.restore()
	if err != nil || it != 37 {
		t.Fatalf("restore: it=%d err=%v", it, err)
	}
	for i := range u {
		if got[i] != u[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], u[i])
		}
	}
}
