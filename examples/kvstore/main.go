// Kvstore: a persistent key-value store over nonvolatile MLC-PCM — the
// "persistent data structures" use case of the paper's Section 1. Keys
// and values live in 64-byte PCM blocks with a block-resident index; the
// store is closed, left unpowered for five years, and reopened by
// scanning the device, demonstrating byte-addressable persistence with
// no refresh.
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

// Record layout inside one 64-byte block:
//
//	magic   [2]byte "kv"
//	keyLen  uint8
//	valLen  uint8
//	key     [keyLen]byte
//	value   [valLen]byte
//	(zero padding)
//	crc32   (FNV-32a over bytes 0..59) at offset 60
const (
	maxKeyLen   = 24
	maxValueLen = 32
	crcOffset   = 60
)

// Store is a tiny persistent KV store over a PCM block device.
type Store struct {
	dev   core.Arch
	index map[string]int // key -> block
	free  []int
}

// Open scans the device and rebuilds the index from valid records —
// exactly what a recovery after power loss does.
func Open(dev core.Arch) *Store {
	s := &Store{dev: dev, index: map[string]int{}}
	for b := 0; b < dev.Blocks(); b++ {
		blk, err := dev.Read(b)
		if err != nil {
			s.free = append(s.free, b)
			continue
		}
		key, _, ok := decode(blk)
		if !ok {
			s.free = append(s.free, b)
			continue
		}
		s.index[key] = b
	}
	// Deterministic allocation order.
	sort.Sort(sort.Reverse(sort.IntSlice(s.free)))
	return s
}

func checksum(p []byte) uint32 {
	h := fnv.New32a()
	h.Write(p[:crcOffset])
	return h.Sum32()
}

func encode(key, value string) ([]byte, error) {
	if len(key) == 0 || len(key) > maxKeyLen {
		return nil, fmt.Errorf("kv: key length %d out of range", len(key))
	}
	if len(value) > maxValueLen {
		return nil, fmt.Errorf("kv: value length %d out of range", len(value))
	}
	blk := make([]byte, core.BlockBytes)
	blk[0], blk[1] = 'k', 'v'
	blk[2] = byte(len(key))
	blk[3] = byte(len(value))
	copy(blk[4:], key)
	copy(blk[4+len(key):], value)
	binary.LittleEndian.PutUint32(blk[crcOffset:], checksum(blk))
	return blk, nil
}

func decode(blk []byte) (key, value string, ok bool) {
	if blk[0] != 'k' || blk[1] != 'v' {
		return "", "", false
	}
	kl, vl := int(blk[2]), int(blk[3])
	if kl == 0 || kl > maxKeyLen || vl > maxValueLen {
		return "", "", false
	}
	if binary.LittleEndian.Uint32(blk[crcOffset:]) != checksum(blk) {
		return "", "", false
	}
	return string(blk[4 : 4+kl]), string(blk[4+kl : 4+kl+vl]), true
}

// Put stores or replaces a key.
func (s *Store) Put(key, value string) error {
	blk, err := encode(key, value)
	if err != nil {
		return err
	}
	b, exists := s.index[key]
	if !exists {
		if len(s.free) == 0 {
			return fmt.Errorf("kv: store full")
		}
		b = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	}
	if err := s.dev.Write(b, blk); err != nil {
		if !exists {
			s.free = append(s.free, b)
		}
		return err
	}
	s.index[key] = b
	return nil
}

// Get retrieves a key.
func (s *Store) Get(key string) (string, bool, error) {
	b, exists := s.index[key]
	if !exists {
		return "", false, nil
	}
	blk, err := s.dev.Read(b)
	if err != nil {
		return "", false, err
	}
	k, v, ok := decode(blk)
	if !ok || k != key {
		return "", false, fmt.Errorf("kv: record for %q corrupted", key)
	}
	return v, true, nil
}

// Delete removes a key by zeroing its block.
func (s *Store) Delete(key string) error {
	b, exists := s.index[key]
	if !exists {
		return nil
	}
	if err := s.dev.Write(b, make([]byte, core.BlockBytes)); err != nil {
		return err
	}
	delete(s.index, key)
	s.free = append(s.free, b)
	return nil
}

// Len returns the number of stored keys.
func (s *Store) Len() int { return len(s.index) }

func run(w io.Writer) error {
	dev := core.NewThreeLC(128, core.ThreeLCConfig{Array: pcmarray.DefaultOptions(11)})
	store := Open(dev)
	fmt.Fprintf(w, "opened fresh store: %d keys, %d free blocks\n", store.Len(), len(store.free))

	// Populate.
	entries := map[string]string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("sensor/%03d", i)
		v := fmt.Sprintf("calibration=%d", i*i)
		entries[k] = v
		if err := store.Put(k, v); err != nil {
			return err
		}
	}
	if err := store.Delete("sensor/050"); err != nil {
		return err
	}
	delete(entries, "sensor/050")
	if err := store.Put("sensor/007", "recalibrated"); err != nil {
		return err
	}
	entries["sensor/007"] = "recalibrated"
	fmt.Fprintf(w, "stored %d keys (one deleted, one updated)\n", store.Len())

	// Power off for five years, then recover by rescanning the device.
	dev.Array().Advance(5 * 365.25 * 86400)
	fmt.Fprintln(w, "...five years pass without power...")
	recovered := Open(dev)
	fmt.Fprintf(w, "recovered store: %d keys\n", recovered.Len())

	if recovered.Len() != len(entries) {
		return fmt.Errorf("recovered %d keys, want %d", recovered.Len(), len(entries))
	}
	for k, want := range entries {
		got, found, err := recovered.Get(k)
		if err != nil || !found || got != want {
			return fmt.Errorf("key %q: got (%q, %v, %v), want %q", k, got, found, err, want)
		}
	}
	if _, found, _ := recovered.Get("sensor/050"); found {
		return fmt.Errorf("deleted key resurrected")
	}
	fmt.Fprintln(w, "all keys verified after recovery")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
