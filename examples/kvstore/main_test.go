package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

func newDev(seed uint64) core.Arch {
	return core.NewThreeLC(32, core.ThreeLCConfig{Array: pcmarray.DefaultOptions(seed)})
}

func TestKVStoreExample(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "all keys verified after recovery") {
		t.Errorf("missing verification line:\n%s", sb.String())
	}
}

func TestPutGetDelete(t *testing.T) {
	s := Open(newDev(1))
	if _, found, _ := s.Get("absent"); found {
		t.Fatal("phantom key")
	}
	if err := s.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "2"); err != nil {
		t.Fatal(err)
	}
	if v, found, err := s.Get("a"); err != nil || !found || v != "2" {
		t.Fatalf("get a = (%q,%v,%v)", v, found, err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := s.Get("a"); found {
		t.Fatal("deleted key readable")
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal("double delete should be a no-op")
	}
}

func TestReopenPreservesState(t *testing.T) {
	dev := newDev(2)
	s := Open(dev)
	for _, kv := range [][2]string{{"x", "1"}, {"y", "2"}, {"z", ""}} {
		if err := s.Put(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	r := Open(dev)
	if r.Len() != 3 {
		t.Fatalf("recovered %d keys", r.Len())
	}
	if v, found, _ := r.Get("z"); !found || v != "" {
		t.Fatal("empty value lost")
	}
}

func TestValidation(t *testing.T) {
	s := Open(newDev(3))
	if err := s.Put("", "v"); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Put(strings.Repeat("k", 25), "v"); err == nil {
		t.Error("oversized key accepted")
	}
	if err := s.Put("k", strings.Repeat("v", 33)); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestStoreFull(t *testing.T) {
	s := Open(newDev(4))
	var err error
	for i := 0; i < 40; i++ {
		if err = s.Put(strings.Repeat("k", 3)+string(rune('a'+i)), "v"); err != nil {
			break
		}
	}
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("expected store-full error, got %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	blk, err := encode("hello", "world")
	if err != nil {
		t.Fatal(err)
	}
	k, v, ok := decode(blk)
	if !ok || k != "hello" || v != "world" {
		t.Fatalf("decode = (%q,%q,%v)", k, v, ok)
	}
	// Corruption is detected by the checksum.
	blk[10] ^= 0xFF
	if _, _, ok := decode(blk); ok {
		t.Fatal("corrupted record accepted")
	}
}
